"""Anycast versus the best unicast alternative.

Prior work (Li et al.) split inflation into "unicast" and "anycast"
components; the paper declined, partly because it could not measure the
best unicast alternative at scale (§3).  On the simulator we *can*: each
site is announced as its own unicast prefix, every client's route to
every site is computed, and anycast's choice is compared against the
client's best unicast option.

This isolates the quantity the SIGCOMM'18 debate was about: how much
latency does *anycast's site selection* specifically leave on the table,
separate from path inflation that any unicast deployment would also pay.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bgp import Attachment, propagate
from ..geo.latency import SPEED_OF_LIGHT_FIBER_KM_PER_MS
from ..users.population import UserBase
from ..anycast.batch import FlowKernel
from ..anycast.deployment import (
    EXTERNAL_HOP_COST_MS,
    EXTERNAL_STRETCH,
    IndependentDeployment,
)
from .cdf import WeightedCdf

__all__ = ["UnicastComparison", "compare_with_unicast"]


@dataclass(slots=True)
class UnicastComparison:
    """Per-user anycast-vs-best-unicast latency comparison."""

    deployment: str
    #: anycast RTT − best unicast-alternative RTT, per user (ms)
    anycast_penalty: WeightedCdf
    #: fraction of users whose anycast site IS their best unicast site
    fraction_optimal_site: float
    users_measured: float

    @property
    def median_penalty_ms(self) -> float:
        return self.anycast_penalty.median

    def fraction_penalty_over(self, ms: float) -> float:
        return self.anycast_penalty.fraction_above(ms)


def _unicast_routes(deployment: IndependentDeployment, seed: int):
    """One routing table per site, announced as a standalone prefix."""
    topology = deployment.topology
    tables = {}
    by_site: dict[int, list[Attachment]] = {}
    for attachment in deployment.routing.attachments.values():
        site_id = deployment.site_of_attachment[attachment.attachment_id]
        if not deployment.sites[site_id].is_global:
            continue
        by_site.setdefault(site_id, []).append(attachment)
    for site_id, attachments in by_site.items():
        tables[site_id] = propagate(
            topology, deployment.origin_asn, attachments, seed=seed
        )
    return tables


def compare_with_unicast(
    deployment: IndependentDeployment,
    user_base: UserBase,
    seed: int = 0,
    max_locations: int | None = None,
) -> UnicastComparison:
    """Compute the anycast penalty for (a sample of) the user base."""
    unicast_tables = _unicast_routes(deployment, seed)

    locations = list(user_base)
    if max_locations is not None:
        locations = locations[:max_locations]
    # Unique ⟨AS, region⟩ keys in first-appearance order (the old per-key
    # cache, now a dedicated batch axis).
    row_of: dict[tuple[int, int], int] = {}
    for location in locations:
        key = (location.asn, location.region_id)
        if key not in row_of:
            row_of[key] = len(row_of)
    asns = [asn for asn, _ in row_of]
    regions = [region_id for _, region_id in row_of]

    anycast = deployment.resolve_many(asns, regions)
    unicast_rtts = _unicast_rtts(deployment, unicast_tables, asns, regions)

    penalties: list[float] = []
    weights: list[float] = []
    optimal_users = 0.0
    for location in locations:
        row = row_of[(location.asn, location.region_id)]
        entry = _penalty_at(anycast, unicast_rtts, row)
        if entry is None:
            continue
        penalty, _, at_best_site = entry
        penalties.append(penalty)
        weights.append(float(location.users))
        if at_best_site:
            optimal_users += location.users
    if not penalties:
        raise ValueError("no measurable user locations")
    total = sum(weights)
    return UnicastComparison(
        deployment=deployment.name,
        anycast_penalty=WeightedCdf(penalties, weights),
        fraction_optimal_site=optimal_users / total,
        users_measured=total,
    )


def _unicast_rtts(deployment, unicast_tables, asns, regions):
    """Per-site batched unicast RTT columns: {site: (ok, rtt_ms)}."""
    asns = np.asarray(asns, dtype=np.int64)
    regions = np.asarray(regions, dtype=np.int64)
    columns = {}
    for site_id, table in unicast_tables.items():
        flows = FlowKernel(deployment.topology, table).resolve(asns, regions)
        legs = np.maximum(flows.path_len - 2, 0) + 1
        rtt = (
            3.0 * flows.total_km / SPEED_OF_LIGHT_FIBER_KM_PER_MS
        ) * EXTERNAL_STRETCH + EXTERNAL_HOP_COST_MS * legs
        columns[site_id] = (flows.ok, rtt)
    return columns


def _penalty_at(anycast, unicast_rtts, row: int):
    if not anycast.ok[row]:
        return None
    best_rtt = float("inf")
    best_site = None
    for site_id, (ok, rtt) in unicast_rtts.items():
        if not ok[row]:
            continue
        if float(rtt[row]) < best_rtt:
            best_rtt = float(rtt[row])
            best_site = site_id
    if best_site is None:
        return None
    penalty = max(0.0, float(anycast.base_rtt_ms[row]) - best_rtt)
    return penalty, best_rtt, int(anycast.site_ids[row]) == best_site
