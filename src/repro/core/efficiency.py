"""Efficiency versus latency versus deployment size (§7.2, Fig. 7a).

*Efficiency* is the fraction of users with zero geographic inflation —
the y-intercepts of Fig. 2a/5a.  The paper's counter-intuitive finding:
larger deployments have *lower* latency and *lower* efficiency, so
efficiency is a poor performance metric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .inflation import InflationResult

__all__ = ["DeploymentPoint", "efficiency_vs_latency"]


@dataclass(frozen=True, slots=True)
class DeploymentPoint:
    """One point in each Fig. 7a panel."""

    name: str
    n_global_sites: int
    median_latency_ms: float
    efficiency: float


def efficiency_vs_latency(
    geographic: InflationResult,
    median_latency_ms: dict[str, float],
    n_sites: dict[str, int],
) -> list[DeploymentPoint]:
    """Join the three per-deployment series into Fig. 7a points.

    ``median_latency_ms`` comes from Atlas pings (median per probe, then
    median across probes); ``n_sites`` is the global-site count.
    """
    points: list[DeploymentPoint] = []
    for name in geographic.names:
        if name not in median_latency_ms or name not in n_sites:
            continue
        points.append(
            DeploymentPoint(
                name=name,
                n_global_sites=n_sites[name],
                median_latency_ms=float(median_latency_ms[name]),
                efficiency=geographic.efficiency(name),
            )
        )
    points.sort(key=lambda p: p.n_global_sites)
    return points


def latency_size_correlation(points: list[DeploymentPoint]) -> float:
    """Spearman-style sign check: does latency fall as size grows?"""
    if len(points) < 3:
        raise ValueError("need at least three deployments")
    sizes = np.array([p.n_global_sites for p in points], dtype=float)
    latencies = np.array([p.median_latency_ms for p in points])
    size_ranks = sizes.argsort().argsort().astype(float)
    latency_ranks = latencies.argsort().argsort().astype(float)
    return float(np.corrcoef(size_ranks, latency_ranks)[0, 1])
