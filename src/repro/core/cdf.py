"""Weighted empirical CDFs.

Every figure in the paper is a CDF "of users" or "of probes": values are
weighted by the population they represent.  :class:`WeightedCdf` is the
common currency every analysis module returns.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["WeightedCdf"]


class WeightedCdf:
    """An empirical CDF over weighted samples."""

    def __init__(self, values: Sequence[float], weights: Sequence[float] | None = None):
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            raise ValueError("cannot build a CDF from no samples")
        if weights is None:
            weights = np.ones_like(values)
        else:
            weights = np.asarray(weights, dtype=float)
        if weights.shape != values.shape:
            raise ValueError("values and weights must align")
        if (weights < 0).any():
            raise ValueError("negative weights")
        total = weights.sum()
        if total <= 0:
            raise ValueError("weights sum to zero")
        order = np.argsort(values, kind="stable")
        self._values = values[order]
        self._cum = np.cumsum(weights[order]) / total
        self.total_weight = float(total)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> np.ndarray:
        return self._values

    @property
    def cumulative(self) -> np.ndarray:
        return self._cum

    def quantile(self, q: float) -> float:
        """Smallest value with cumulative weight ≥ q."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of range: {q}")
        index = int(np.searchsorted(self._cum, q, side="left"))
        index = min(index, len(self._values) - 1)
        return float(self._values[index])

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    def fraction_at_most(self, x: float) -> float:
        """Weighted fraction of samples with value ≤ x."""
        index = int(np.searchsorted(self._values, x, side="right"))
        return float(self._cum[index - 1]) if index > 0 else 0.0

    def fraction_above(self, x: float) -> float:
        return 1.0 - self.fraction_at_most(x)

    def fraction_at_zero(self, eps: float = 1e-9) -> float:
        """The y-axis intercept of the figure (mass at ~zero)."""
        return self.fraction_at_most(eps)

    def series(self, points: Sequence[float]) -> list[tuple[float, float]]:
        """(x, F(x)) pairs at the requested x values — figure regeneration."""
        return [(float(x), self.fraction_at_most(float(x))) for x in points]

    def scaled(self, factor: float) -> "WeightedCdf":
        """CDF of ``factor × value`` (e.g. per-RTT → per-page-load)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        cdf = WeightedCdf.__new__(WeightedCdf)
        cdf._values = self._values * factor
        cdf._cum = self._cum
        cdf.total_weight = self.total_weight
        return cdf

    def summary(self) -> dict[str, float]:
        return {
            "p10": self.quantile(0.10),
            "p25": self.quantile(0.25),
            "median": self.median,
            "p75": self.quantile(0.75),
            "p90": self.quantile(0.90),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }
