"""RFC 8806 ("local root") adoption study.

Section 4.1 cites proposals to largely replace root queries with local
copies of the root zone (RFC 8806) or to eliminate the root entirely.
This extension quantifies the proposal on our DITL∩CDN dataset: if the
top-N% of recursives (by query volume or by users) served the root zone
locally, their root queries would collapse to one zone refresh per TTL,
and the global query distribution of Fig. 3 reshapes accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dns.records import RootZone
from ..ditl.join import JoinedRecursive
from .cdf import WeightedCdf

__all__ = ["AdoptionOutcome", "simulate_local_root_adoption"]

_STRATEGIES = ("by_volume", "by_users")


@dataclass(slots=True)
class AdoptionOutcome:
    """Effect of a local-root adoption scenario."""

    strategy: str
    adoption_fraction: float
    adopters: int
    recursives: int
    traffic_before_qpd: float
    traffic_after_qpd: float
    qpud_before: WeightedCdf
    qpud_after: WeightedCdf

    @property
    def traffic_reduction(self) -> float:
        if self.traffic_before_qpd <= 0:
            return 0.0
        return 1.0 - self.traffic_after_qpd / self.traffic_before_qpd

    @property
    def median_shift(self) -> float:
        """How far the Fig. 3 median moves (before − after)."""
        return self.qpud_before.median - self.qpud_after.median


def simulate_local_root_adoption(
    rows: list[JoinedRecursive],
    zone: RootZone,
    adoption_fraction: float = 0.1,
    strategy: str = "by_volume",
) -> AdoptionOutcome:
    """Convert the heaviest recursives to local-root service.

    ``strategy`` picks adopters by daily valid query volume (the
    operator-pain view) or by user count (the user-benefit view).
    Adopters' daily root traffic becomes one zone refresh per TTL
    (``zone.ideal_daily_root_queries()``), the RFC 8806 steady state.
    """
    if not 0.0 <= adoption_fraction <= 1.0:
        raise ValueError(f"adoption_fraction out of range: {adoption_fraction}")
    if strategy not in _STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; use one of {_STRATEGIES}")
    usable = [row for row in rows if row.users > 0 and row.daily_valid_queries > 0]
    if not usable:
        raise ValueError("no usable joined rows")

    key = (
        (lambda row: row.daily_valid_queries)
        if strategy == "by_volume"
        else (lambda row: row.users)
    )
    ranked = sorted(usable, key=key, reverse=True)
    n_adopters = int(round(len(ranked) * adoption_fraction))
    adopters = {id(row) for row in ranked[:n_adopters]}

    refresh = zone.ideal_daily_root_queries()
    before_values: list[float] = []
    after_values: list[float] = []
    weights: list[float] = []
    traffic_before = 0.0
    traffic_after = 0.0
    for row in usable:
        queries = row.daily_valid_queries
        adjusted = min(queries, refresh) if id(row) in adopters else queries
        traffic_before += queries
        traffic_after += adjusted
        before_values.append(queries / row.users)
        after_values.append(adjusted / row.users)
        weights.append(float(row.users))

    return AdoptionOutcome(
        strategy=strategy,
        adoption_fraction=adoption_fraction,
        adopters=n_adopters,
        recursives=len(usable),
        traffic_before_qpd=traffic_before,
        traffic_after_qpd=traffic_after,
        qpud_before=WeightedCdf(before_values, weights),
        qpud_after=WeightedCdf(after_values, weights),
    )
