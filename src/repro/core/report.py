"""Plain-text rendering of analysis results (tables and CDF summaries)."""

from __future__ import annotations

from collections.abc import Sequence

from .cdf import WeightedCdf

__all__ = ["format_table", "format_cdf_summary", "format_cdf_series"]


def format_table(rows: Sequence[dict[str, str]], columns: Sequence[str] | None = None) -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return "(empty table)"
    columns = list(columns) if columns else list(rows[0])
    widths = {c: max(len(c), *(len(str(r.get(c, ""))) for r in rows)) for c in columns}
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    ruler = "  ".join("-" * widths[c] for c in columns)
    lines = [header, ruler]
    for row in rows:
        lines.append("  ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def format_cdf_summary(label: str, cdf: WeightedCdf, unit: str = "ms") -> str:
    """One-line percentile summary of a CDF."""
    s = cdf.summary()
    return (
        f"{label:>12}: p10={s['p10']:.2f}{unit} p25={s['p25']:.2f}{unit} "
        f"median={s['median']:.2f}{unit} p90={s['p90']:.2f}{unit} "
        f"p95={s['p95']:.2f}{unit} p99={s['p99']:.2f}{unit} "
        f"(zero-mass={cdf.fraction_at_zero(0.5):.2f})"
    )


def format_cdf_series(
    label: str, cdf: WeightedCdf, points: Sequence[float], unit: str = "ms"
) -> str:
    """Sampled (x, F(x)) pairs — the series a figure would plot."""
    pairs = ", ".join(f"{x:g}{unit}:{f:.3f}" for x, f in cdf.series(points))
    return f"{label}: {pairs}"
