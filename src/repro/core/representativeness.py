"""Methodology-validation analyses (Appendix B.2: Table 4 and Fig. 10)."""

from __future__ import annotations

from dataclasses import dataclass

from ..ditl.join import JoinStats
from ..ditl.preprocess import FilteredDitl
from .cdf import WeightedCdf

__all__ = ["OverlapTable", "overlap_table", "favorite_site_cdf"]


@dataclass(slots=True)
class OverlapTable:
    """Table 4: representativeness with and without the /24 join."""

    by_ip: JoinStats
    by_slash24: JoinStats

    def rows(self) -> list[dict[str, str]]:
        def pct(x: float) -> str:
            return f"{100.0 * x:.1f}%"

        return [
            {
                "statistic": "DITL Recursives",
                "exact_ip": pct(self.by_ip.frac_ditl_recursives),
                "by_slash24": pct(self.by_slash24.frac_ditl_recursives),
            },
            {
                "statistic": "DITL Volume",
                "exact_ip": pct(self.by_ip.frac_ditl_volume),
                "by_slash24": pct(self.by_slash24.frac_ditl_volume),
            },
            {
                "statistic": "CDN Recursives",
                "exact_ip": pct(self.by_ip.frac_cdn_recursives),
                "by_slash24": pct(self.by_slash24.frac_cdn_recursives),
            },
            {
                "statistic": "CDN Volume (users)",
                "exact_ip": pct(self.by_ip.frac_cdn_users),
                "by_slash24": pct(self.by_slash24.frac_cdn_users),
            },
        ]


def overlap_table(by_ip: JoinStats, by_slash24: JoinStats) -> OverlapTable:
    return OverlapTable(by_ip=by_ip, by_slash24=by_slash24)


def favorite_site_cdf(
    filtered: FilteredDitl, letter: str, min_ips: int = 2, point_mass: bool = False
) -> WeightedCdf | None:
    """Fig. 10's Eq. 3: fraction of a /24's queries missing its favorite site.

    For each /24 (with at least ``min_ips`` source IPs, as in the paper),
    compute ``1 − Σ_i q_i,F / Q`` where F is the /24's most-queried site.
    Returns ``None`` when no /24 qualifies.

    ``point_mass`` applies Appendix B.2's control for per-IP path
    instability: each IP's query distribution is replaced by a point
    mass at that IP's own favorite site before aggregating, isolating
    *across-IP* routing incoherence from per-IP flapping.  The paper
    finds >90% of /24s become fully single-site under this control.
    """
    volumes = filtered.per_letter[letter]
    per_slash24_site: dict[int, dict[int, int]] = {}
    ips_per_slash24: dict[int, set[int]] = {}
    for ip, site_map in volumes.site_by_ip.items():
        slash24 = ip >> 8
        ips_per_slash24.setdefault(slash24, set()).add(ip)
        accumulator = per_slash24_site.setdefault(slash24, {})
        if point_mass:
            total = sum(site_map.values())
            favorite = max(site_map, key=site_map.get)
            accumulator[favorite] = accumulator.get(favorite, 0) + total
        else:
            for site, count in site_map.items():
                accumulator[site] = accumulator.get(site, 0) + count
    fractions: list[float] = []
    for slash24, site_map in per_slash24_site.items():
        if len(ips_per_slash24[slash24]) < min_ips:
            continue
        total = sum(site_map.values())
        if total <= 0:
            continue
        favorite = max(site_map.values())
        fractions.append(1.0 - favorite / total)
    if not fractions:
        return None
    return WeightedCdf(fractions)
