"""AS-path-length analysis (§7.1, Fig. 6).

From Atlas traceroutes: clean hops (drop IXP/private/unresponsive,
merge organization siblings), group by ⟨region, AS⟩ location — or
⟨region, AS, root⟩ for the All Roots aggregate — and relate the modal
path length of a location to its geographic inflation.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..measurement.atlas import Traceroute
from ..topology.orgs import OrgTable
from .stats import BoxStats, box_stats

__all__ = [
    "PathLengthDistribution",
    "path_length_distribution",
    "modal_length_by_location",
    "inflation_by_path_length",
]

#: Path-length buckets as shown in Fig. 6a.
LENGTH_BUCKETS = (2, 3, 4, 5)  # 5 means "5 or more"


@dataclass(slots=True)
class PathLengthDistribution:
    """Share of ⟨region, AS⟩ locations per AS-path-length bucket."""

    destination: str
    shares: dict[int, float] = field(default_factory=dict)  # bucket → share

    def share(self, bucket: int) -> float:
        return self.shares.get(bucket, 0.0)

    @property
    def two_as_share(self) -> float:
        return self.share(2)


def _clean_length(route: Traceroute, orgs: OrgTable) -> int:
    """Organizations traversed after sibling merging (≥ 2)."""
    merged = orgs.merge_path(route.as_sequence())
    return max(2, len(merged))


def _bucket(length: int) -> int:
    return min(length, LENGTH_BUCKETS[-1])


def modal_length_by_location(
    routes: list[Traceroute], orgs: OrgTable, world=None
) -> dict[tuple[int, int], int]:
    """Most common cleaned path length per ⟨region, AS⟩ location."""
    lengths: dict[tuple[int, int], Counter] = {}
    for route in routes:
        key = (route.probe.region_id, route.probe.asn)
        lengths.setdefault(key, Counter())[_clean_length(route, orgs)] += 1
    return {
        key: counter.most_common(1)[0][0] for key, counter in lengths.items()
    }


def path_length_distribution(
    routes: list[Traceroute], orgs: OrgTable, destination: str
) -> PathLengthDistribution:
    """Fig. 6a: location-weighted shares per length bucket.

    Each ⟨region, AS⟩ location carries equal weight; when its probes
    measure several lengths, its weight splits evenly across them.
    """
    per_location: dict[tuple[int, int], Counter] = {}
    for route in routes:
        key = (route.probe.region_id, route.probe.asn)
        per_location.setdefault(key, Counter())[_bucket(_clean_length(route, orgs))] += 1
    shares: dict[int, float] = dict.fromkeys(LENGTH_BUCKETS, 0.0)
    if not per_location:
        return PathLengthDistribution(destination=destination, shares=shares)
    for counter in per_location.values():
        total = sum(counter.values())
        for bucket, count in counter.items():
            shares[bucket] += count / total
    n_locations = len(per_location)
    shares = {bucket: share / n_locations for bucket, share in shares.items()}
    return PathLengthDistribution(destination=destination, shares=shares)


def inflation_by_path_length(
    routes: list[Traceroute],
    orgs: OrgTable,
    inflation_by_location: dict[tuple[int, int], float],
    max_bucket: int = 4,
) -> dict[int, BoxStats]:
    """Fig. 6b: five-number inflation summary per path-length bucket.

    ``inflation_by_location`` is the user-weighted mean geographic
    inflation per ⟨region, AS⟩ from the Eq. 1 analysis; path length is
    the modal cleaned length of that location's probes.
    """
    modal = modal_length_by_location(routes, orgs)
    grouped: dict[int, list[float]] = {}
    for key, length in modal.items():
        inflation = inflation_by_location.get(key)
        if inflation is None:
            continue
        grouped.setdefault(min(length, max_bucket), []).append(inflation)
    return {bucket: box_stats(values) for bucket, values in sorted(grouped.items())}
