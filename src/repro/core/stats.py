"""Small statistics helpers shared by analysis modules."""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

__all__ = ["BoxStats", "box_stats", "weighted_mean", "weighted_median"]


@dataclass(frozen=True, slots=True)
class BoxStats:
    """Five-number summary, as in Fig. 6b's box-and-whisker plot."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    count: int

    def as_tuple(self) -> tuple[float, float, float, float, float]:
        return (self.minimum, self.q1, self.median, self.q3, self.maximum)


def box_stats(values: Sequence[float]) -> BoxStats:
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ValueError("no values")
    return BoxStats(
        minimum=float(array.min()),
        q1=float(np.percentile(array, 25)),
        median=float(np.percentile(array, 50)),
        q3=float(np.percentile(array, 75)),
        maximum=float(array.max()),
        count=int(array.size),
    )


def weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    values = np.asarray(values, dtype=float)
    weights = np.asarray(weights, dtype=float)
    total = weights.sum()
    if total <= 0:
        raise ValueError("weights sum to zero")
    return float((values * weights).sum() / total)


def weighted_median(values: Sequence[float], weights: Sequence[float]) -> float:
    values = np.asarray(values, dtype=float)
    weights = np.asarray(weights, dtype=float)
    order = np.argsort(values)
    cumulative = np.cumsum(weights[order])
    if cumulative[-1] <= 0:
        raise ValueError("weights sum to zero")
    index = int(np.searchsorted(cumulative, cumulative[-1] / 2.0))
    return float(values[order][min(index, len(values) - 1)])
