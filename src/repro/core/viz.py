"""Terminal rendering of figure line series.

The experiments expose the exact (x, y) points each figure would plot
(:attr:`ExperimentResult.series`); this module draws them as Unicode
line charts so a reproduction can be *looked at* without matplotlib —
`anycast-repro run fig02a --plot`.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_series", "render_cdf_grid"]

#: Markers cycled across lines, mirroring a figure legend.
_MARKERS = "ox+*#@%&$~^"


def _scale(value: float, low: float, high: float, cells: int) -> int:
    if high <= low:
        return 0
    position = (value - low) / (high - low)
    return min(cells - 1, max(0, int(round(position * (cells - 1)))))


def render_series(
    series: dict[str, list[tuple[float, float]]],
    width: int = 72,
    height: int = 18,
    x_label: str = "x",
    y_label: str = "CDF",
    logx: bool = False,
) -> str:
    """Draw one or more lines on a shared character grid.

    Points are plotted at their nearest cell; the legend maps markers to
    line labels.  ``logx`` uses a log10 x-axis (Fig. 3/8/9-style plots).
    """
    import math

    if not series:
        return "(no series)"
    points = [(x, y) for line in series.values() for x, y in line]
    xs = [math.log10(x) if logx else x for x, _ in points if not logx or x > 0]
    ys = [y for _, y in points]
    if not xs:
        return "(no plottable points)"
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(0.0, min(ys)), max(1.0, max(ys))

    grid = [[" "] * width for _ in range(height)]
    legend: list[str] = []
    for index, (label, line) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"  {marker} {label}")
        for x, y in line:
            if logx:
                if x <= 0:
                    continue
                x = math.log10(x)
            column = _scale(x, x_low, x_high, width)
            row = height - 1 - _scale(y, y_low, y_high, height)
            grid[row][column] = marker

    lines = []
    for row_index, row in enumerate(grid):
        fraction = y_high - (y_high - y_low) * row_index / (height - 1)
        prefix = f"{fraction:4.2f} |" if row_index % 4 == 0 else "     |"
        lines.append(prefix + "".join(row))
    lines.append("     +" + "-" * width)
    left = f"10^{x_low:.1f}" if logx else f"{x_low:g}"
    right = f"10^{x_high:.1f}" if logx else f"{x_high:g}"
    pad = max(1, width - len(left) - len(right))
    lines.append("      " + left + " " * pad + right + f"  ({x_label})")
    lines.append(f"      y: {y_label}")
    lines.extend(legend)
    return "\n".join(lines)


def render_cdf_grid(
    series: dict[str, list[tuple[float, float]]],
    columns: Sequence[float],
) -> str:
    """A compact tabular view: F(x) per line at chosen x values."""
    header = ["line".ljust(18)] + [f"{x:>8g}" for x in columns]
    rows = ["".join(header)]
    for label, line in series.items():
        lookup = dict(line)
        cells = [label[:18].ljust(18)]
        for x in columns:
            value = lookup.get(x)
            if value is None:
                # nearest available point at or below x
                below = [y for px, y in line if px <= x]
                value = below[-1] if below else 0.0
            cells.append(f"{value:8.3f}")
        rows.append("".join(cells))
    return "\n".join(rows)
