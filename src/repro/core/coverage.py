"""Site coverage of user populations (§7.2, Fig. 7b).

"Covered" means the closest (global) site of a deployment is within X km
of the users; the figure sweeps X and reports the covered share of the
user population.  The surprising datum the figure carries: the root
system as a whole covers users about as well as the CDN's largest ring,
despite never being planned for them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..anycast.deployment import Deployment
from ..users.population import UserBase

__all__ = ["CoverageCurve", "coverage_curve", "combined_coverage_curve"]

#: Radii (km) at which Fig. 7b samples the curves.
DEFAULT_RADII_KM = (250, 500, 750, 1000, 1250, 1500, 1750, 2000)


@dataclass(slots=True)
class CoverageCurve:
    """Covered user share as a function of radius."""

    name: str
    radii_km: tuple[float, ...]
    covered_fraction: tuple[float, ...]

    def at(self, radius_km: float) -> float:
        for radius, fraction in zip(self.radii_km, self.covered_fraction):
            if radius >= radius_km:
                return fraction
        return self.covered_fraction[-1]


def _population_weights(user_base: UserBase, n_regions: int) -> np.ndarray:
    weights = np.zeros(n_regions)
    for location in user_base:
        weights[location.region_id] += location.users
    return weights


def coverage_curve(
    deployment: Deployment,
    user_base: UserBase,
    radii_km: tuple[float, ...] = DEFAULT_RADII_KM,
) -> CoverageCurve:
    """Coverage of the *user base* (not raw region population)."""
    world = deployment.topology.world
    weights = _population_weights(user_base, len(world))
    min_km = deployment.region_min_km()
    total = weights.sum()
    fractions = tuple(
        float(weights[min_km <= radius].sum() / total) for radius in radii_km
    )
    return CoverageCurve(deployment.name, tuple(float(r) for r in radii_km), fractions)


def combined_coverage_curve(
    deployments: list[Deployment],
    user_base: UserBase,
    name: str = "All Roots",
    radii_km: tuple[float, ...] = DEFAULT_RADII_KM,
) -> CoverageCurve:
    """Coverage by the union of several deployments' global sites."""
    if not deployments:
        raise ValueError("need at least one deployment")
    world = deployments[0].topology.world
    weights = _population_weights(user_base, len(world))
    min_km = np.full(len(world), np.inf)
    for deployment in deployments:
        min_km = np.minimum(min_km, deployment.region_min_km())
    total = weights.sum()
    fractions = tuple(
        float(weights[min_km <= radius].sum() / total) for radius in radii_km
    )
    return CoverageCurve(name, tuple(float(r) for r in radii_km), fractions)
