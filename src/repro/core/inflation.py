"""Inflation metrics — the paper's Equations 1 and 2.

*Geographic inflation* (Eq. 1) compares the distance of the sites a
recursive's queries actually reach against the closest global site,
expressed as round-trip milliseconds at the speed of light in fiber:

    GI(R, j) = (2 / c_f) · ( Σ_i N(R, j_i)·d(R, j_i) / N(R, j)  −  min_k d(R, j_k) )

*Latency inflation* (Eq. 2) replaces per-site distances with measured
median TCP RTTs and the lower bound with the achievable RTT
``3·d_min / c_f`` (paths rarely beat two-thirds of fiber speed):

    LI(R, j) = Σ_i N(R, j_i)·l(R, j_i) / N(R, j)  −  (3·2 / 2c_f) · min_k d(R, j_k)

Both are computed per recursive (DITL∩CDN rows) for the roots and per
⟨region, AS⟩ location (server-side logs) for the CDN, always weighted by
users, and always over *global* sites only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..anycast.batch import region_distance_matrix
from ..anycast.builders import CdnSystem
from ..anycast.deployment import Deployment, IndependentDeployment
from ..ditl.capture import DitlCapture
from ..ditl.join import JoinedRecursive
from ..geo import geographic_rtt_ms, optimal_rtt_ms
from ..measurement.serverlogs import ServerSideLogs
from .cdf import WeightedCdf

__all__ = [
    "EFFICIENCY_EPS_MS",
    "InflationResult",
    "root_geographic_inflation",
    "root_latency_inflation",
    "cdn_geographic_inflation",
    "cdn_latency_inflation",
]

#: Inflation below this is treated as "zero" (efficiency intercepts);
#: 0.5 ms ≈ 50 km, generous to metro-scale geolocation fuzz.
EFFICIENCY_EPS_MS = 0.5


@dataclass(slots=True)
class InflationResult:
    """Per-deployment inflation CDFs plus per-location means (Fig. 6b)."""

    per_deployment: dict[str, WeightedCdf] = field(default_factory=dict)
    combined: WeightedCdf | None = None  # the "All Roots" line
    #: user-weighted mean inflation per ⟨region, AS⟩ per deployment
    per_location: dict[str, dict[tuple[int, int], float]] = field(default_factory=dict)

    def efficiency(self, name: str) -> float:
        """Fraction of users with (approximately) zero inflation."""
        return self.per_deployment[name].fraction_at_most(EFFICIENCY_EPS_MS)

    @property
    def names(self) -> list[str]:
        return sorted(self.per_deployment)


def _site_distance_km(deployment: Deployment, region_id: int, site_id: int) -> float:
    distances = region_distance_matrix(deployment.topology)
    return float(distances[region_id, deployment.site_region_ids[site_id]])


def _accumulate_location(
    table: dict[tuple[int, int], list[tuple[float, float]]],
    row: JoinedRecursive,
    value: float,
) -> None:
    if row.asn is None:
        return
    table.setdefault((row.region_id, row.asn), []).append((value, float(row.users)))


def _location_means(
    table: dict[tuple[int, int], list[tuple[float, float]]]
) -> dict[tuple[int, int], float]:
    means = {}
    for key, pairs in table.items():
        weight = sum(w for _, w in pairs)
        if weight > 0:
            means[key] = sum(v * w for v, w in pairs) / weight
    return means


def root_geographic_inflation(
    rows: list[JoinedRecursive],
    letters: dict[str, IndependentDeployment],
    min_global_sites: int = 2,
) -> InflationResult:
    """Eq. 1 over the root letters (Fig. 2a), plus the All Roots line.

    Letters with a single global site are skipped per-letter (inflation
    is trivially zero) but still participate in nothing — exactly as the
    paper omits H root.
    """
    eligible = {
        name: dep for name, dep in letters.items() if dep.n_global_sites >= min_global_sites
    }
    values: dict[str, list[float]] = {name: [] for name in eligible}
    weights: dict[str, list[float]] = {name: [] for name in eligible}
    combined_values: list[float] = []
    combined_weights: list[float] = []
    combined_table: dict = {}
    location_tables: dict[str, dict] = {name: {} for name in eligible}
    global_ids_of = {
        name: {s.site_id for s in dep.global_sites} for name, dep in eligible.items()
    }

    for row in rows:
        if row.users <= 0:
            continue
        per_letter_gi: dict[str, float] = {}
        per_letter_volume: dict[str, float] = {}
        for name, deployment in eligible.items():
            site_map = row.site_valid_by_letter.get(name)
            if not site_map:
                continue
            global_ids = global_ids_of[name]
            total = 0.0
            weighted_km = 0.0
            for site_id, queries in site_map.items():
                if site_id not in global_ids:
                    continue  # Eq. 1 sums over global sites only
                total += queries
                weighted_km += queries * _site_distance_km(deployment, row.region_id, site_id)
            if total <= 0:
                continue
            extra_km = weighted_km / total - deployment.min_global_distance_km(row.region_id)
            gi = max(0.0, geographic_rtt_ms(extra_km))
            per_letter_gi[name] = gi
            per_letter_volume[name] = total
            values[name].append(gi)
            weights[name].append(float(row.users))
            _accumulate_location(location_tables[name], row, gi)
        if per_letter_gi:
            volume = sum(per_letter_volume.values())
            blended = sum(
                gi * per_letter_volume[name] for name, gi in per_letter_gi.items()
            ) / volume
            combined_values.append(blended)
            combined_weights.append(float(row.users))
            _accumulate_location(combined_table, row, blended)

    result = InflationResult()
    for name in eligible:
        if values[name]:
            result.per_deployment[name] = WeightedCdf(values[name], weights[name])
            result.per_location[name] = _location_means(location_tables[name])
    if combined_values:
        result.combined = WeightedCdf(combined_values, combined_weights)
        result.per_location["All Roots"] = _location_means(combined_table)
    return result


def _tcp_index(capture: DitlCapture, letter: str) -> dict[tuple[int, int], tuple[float, int]]:
    """(slash24, site) → (sample-weighted RTT, samples) for one letter."""
    index: dict[tuple[int, int], tuple[float, int]] = {}
    for row in capture.letters[letter].tcp:
        key = (row.slash24, row.site_id)
        if key in index:
            rtt, samples = index[key]
            total = samples + row.samples
            index[key] = ((rtt * samples + row.rtt_ms * row.samples) / total, total)
        else:
            index[key] = (row.rtt_ms, row.samples)
    return index


def root_latency_inflation(
    rows: list[JoinedRecursive],
    letters: dict[str, IndependentDeployment],
    capture: DitlCapture,
    min_samples: int = 10,
    min_global_sites: int = 2,
) -> InflationResult:
    """Eq. 2 over the letters with usable TCP (Fig. 2b) plus All Roots."""
    eligible = {
        name: dep
        for name, dep in letters.items()
        if dep.n_global_sites >= min_global_sites
        and name in capture.letters
        and capture.letters[name].tcp_ok
    }
    values: dict[str, list[float]] = {name: [] for name in eligible}
    weights: dict[str, list[float]] = {name: [] for name in eligible}
    combined_values: list[float] = []
    combined_weights: list[float] = []
    indexes = {name: _tcp_index(capture, name) for name in eligible}
    global_ids_of = {
        name: {s.site_id for s in dep.global_sites} for name, dep in eligible.items()
    }

    for row in rows:
        if row.users <= 0:
            continue
        per_letter_li: dict[str, float] = {}
        per_letter_volume: dict[str, float] = {}
        for name, deployment in eligible.items():
            site_map = row.site_valid_by_letter.get(name)
            if not site_map:
                continue
            index = indexes[name]
            global_ids = global_ids_of[name]
            covered = 0.0
            weighted_rtt = 0.0
            for site_id, queries in site_map.items():
                if site_id not in global_ids:
                    continue
                sample = index.get((row.slash24, site_id))
                if sample is None or sample[1] < min_samples:
                    continue  # need ≥ min_samples handshakes per site
                covered += queries
                weighted_rtt += queries * sample[0]
            if covered <= 0:
                continue
            li = weighted_rtt / covered - optimal_rtt_ms(
                deployment.min_global_distance_km(row.region_id)
            )
            per_letter_li[name] = li
            per_letter_volume[name] = covered
            values[name].append(li)
            weights[name].append(float(row.users))
        if per_letter_li:
            volume = sum(per_letter_volume.values())
            blended = sum(
                li * per_letter_volume[name] for name, li in per_letter_li.items()
            ) / volume
            combined_values.append(blended)
            combined_weights.append(float(row.users))

    result = InflationResult()
    for name in eligible:
        if values[name]:
            result.per_deployment[name] = WeightedCdf(values[name], weights[name])
    if combined_values:
        result.combined = WeightedCdf(combined_values, combined_weights)
    return result


def cdn_geographic_inflation(logs: ServerSideLogs, cdn: CdnSystem) -> InflationResult:
    """Eq. 1 per ring from server-side logs (Fig. 5a)."""
    result = InflationResult()
    for ring_name in logs.rings:
        ring = cdn.rings[ring_name]
        ring_rows = logs.for_ring(ring_name)
        site_km = ring.site_distance_km_many(
            [row.region_id for row in ring_rows],
            [row.front_end_site_id for row in ring_rows],
        )
        min_km = ring.min_global_distance_km_many([row.region_id for row in ring_rows])
        values: list[float] = []
        weights: list[float] = []
        table: dict = {}
        for index, row in enumerate(ring_rows):
            extra_km = float(site_km[index]) - float(min_km[index])
            gi = max(0.0, geographic_rtt_ms(extra_km))
            values.append(gi)
            weights.append(float(row.users))
            table.setdefault((row.region_id, row.asn), []).append((gi, float(row.users)))
        if values:
            result.per_deployment[ring_name] = WeightedCdf(values, weights)
            result.per_location[ring_name] = _location_means(table)
    return result


def cdn_latency_inflation(logs: ServerSideLogs, cdn: CdnSystem) -> InflationResult:
    """Eq. 2 per ring from server-side logs (Fig. 5b)."""
    result = InflationResult()
    for ring_name in logs.rings:
        ring = cdn.rings[ring_name]
        ring_rows = logs.for_ring(ring_name)
        min_km = ring.min_global_distance_km_many([row.region_id for row in ring_rows])
        values: list[float] = []
        weights: list[float] = []
        for index, row in enumerate(ring_rows):
            li = row.median_rtt_ms - optimal_rtt_ms(float(min_km[index]))
            values.append(li)
            weights.append(float(row.users))
        if values:
            result.per_deployment[ring_name] = WeightedCdf(values, weights)
    return result
