"""Redundant root-query analysis (Appendix E, Table 5).

A root query is *redundant* when the same record was requested from the
roots less than one TTL earlier.  At the instrumented resolver, ~80% of
root queries are redundant and follow one pattern: an authoritative
nameserver fails to answer, and the resolver — instead of asking the
(cached) TLD — asks the *root* for the AAAA records of every nameserver
it lacks glue for.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dns.records import QType
from ..dns.trace import ClientQuery, DnsTrace

__all__ = ["RedundancyStats", "Table5Episode", "analyze_redundancy", "find_bug_episode"]


@dataclass(slots=True)
class RedundancyStats:
    """Counts of redundant root queries and the bug-pattern share."""

    total_root_queries: int = 0
    redundant: int = 0
    redundant_matching_bug_pattern: int = 0
    redundant_aaaa: int = 0

    @property
    def fraction_redundant(self) -> float:
        return self.redundant / self.total_root_queries if self.total_root_queries else 0.0

    @property
    def fraction_bug_pattern_of_redundant(self) -> float:
        return (
            self.redundant_matching_bug_pattern / self.redundant if self.redundant else 0.0
        )

    @property
    def fraction_aaaa_of_redundant(self) -> float:
        return self.redundant_aaaa / self.redundant if self.redundant else 0.0


def analyze_redundancy(trace: DnsTrace, ttl_s: float = 172_800.0) -> RedundancyStats:
    """Classify every root query in ``trace`` by the 1-TTL rule."""
    stats = RedundancyStats()
    last_asked: dict[tuple[str, str], float] = {}
    for client_query in trace:
        had_timeout = any(q.timed_out for q in client_query.upstream)
        for upstream in client_query.upstream:
            if not upstream.is_root:
                continue
            stats.total_root_queries += 1
            key = (upstream.qname, upstream.qtype.value)
            previous = last_asked.get(key)
            last_asked[key] = upstream.t
            if previous is None or upstream.t - previous >= ttl_s:
                continue
            stats.redundant += 1
            if upstream.qtype is QType.AAAA:
                stats.redundant_aaaa += 1
                if had_timeout:
                    stats.redundant_matching_bug_pattern += 1
    return stats


@dataclass(slots=True)
class Table5Episode:
    """One bug episode rendered as Table 5's step list."""

    client_qname: str
    steps: list[tuple[int, float, str, str, str, str]] = field(default_factory=list)
    # (step, relative timestamp s, from, to, qname, qtype)

    def to_rows(self) -> list[dict[str, str]]:
        return [
            {
                "step": str(step),
                "relative_timestamp_s": f"{t:.5f}",
                "from": source,
                "to": destination,
                "query_name": qname,
                "query_type": qtype,
            }
            for step, t, source, destination, qname, qtype in self.steps
        ]


def find_bug_episode(trace: DnsTrace, min_root_aaaa: int = 2) -> Table5Episode | None:
    """Locate a client query exhibiting the Table-5 pattern."""
    for client_query in trace:
        if not _is_bug_episode(client_query, min_root_aaaa):
            continue
        episode = Table5Episode(client_qname=client_query.qname)
        t0 = client_query.t
        episode.steps.append(
            (1, 0.0, "client", "resolver", client_query.qname, client_query.qtype.value)
        )
        for index, upstream in enumerate(client_query.upstream, start=2):
            episode.steps.append(
                (
                    index,
                    max(0.0, upstream.t - t0),
                    "resolver",
                    upstream.server,
                    upstream.qname,
                    upstream.qtype.value,
                )
            )
        return episode
    return None


def _is_bug_episode(client_query: ClientQuery, min_root_aaaa: int) -> bool:
    timed_out = any(q.timed_out for q in client_query.upstream)
    root_aaaa = sum(
        1
        for q in client_query.upstream
        if q.is_root and q.qtype is QType.AAAA
    )
    return timed_out and root_aaaa >= min_root_aaaa
