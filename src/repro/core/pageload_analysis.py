"""CDN latency in page-load terms (§5, Fig. 4a/4b).

Per-RTT anycast latency is scaled by the Appendix-C lower bound (≥10
RTTs per page load) to show what inflation costs a user fetching web
content — the quantity that makes the CDN's incentive story concrete.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..measurement.clientside import ClientSideMeasurements
from .cdf import WeightedCdf

__all__ = [
    "RTTS_PER_PAGE_LOAD",
    "RingLatencyResult",
    "ring_latency_cdfs",
    "RingTransition",
    "ring_transitions",
]

#: Appendix C's conservative estimate.
RTTS_PER_PAGE_LOAD = 10


@dataclass(slots=True)
class RingLatencyResult:
    """Per-ring latency CDFs in both units (blue and red axes)."""

    per_rtt: dict[str, WeightedCdf] = field(default_factory=dict)

    def per_page_load(self, ring: str, rtts: int = RTTS_PER_PAGE_LOAD) -> WeightedCdf:
        return self.per_rtt[ring].scaled(float(rtts))

    @property
    def rings(self) -> list[str]:
        return sorted(self.per_rtt, key=lambda name: int(name.lstrip("R")))


def ring_latency_cdfs(
    samples_by_ring: dict[str, list[float]],
    weights_by_ring: dict[str, list[float]] | None = None,
) -> RingLatencyResult:
    """Build per-ring CDFs from per-probe (or per-location) medians."""
    result = RingLatencyResult()
    for ring, samples in samples_by_ring.items():
        if not samples:
            continue
        weights = weights_by_ring.get(ring) if weights_by_ring else None
        result.per_rtt[ring] = WeightedCdf(samples, weights)
    return result


@dataclass(slots=True)
class RingTransition:
    """Fig. 4b: latency change from a ring to the next larger one."""

    smaller: str
    bigger: str
    #: per-⟨region, AS⟩ (smaller − bigger) median latency delta, ms/RTT
    delta_cdf: WeightedCdf

    @property
    def label(self) -> str:
        return f"{self.smaller} - {self.bigger}"

    def fraction_improved_or_equal(self, tolerance_ms: float = 0.5) -> float:
        """Share of locations that do not regress when the ring grows."""
        return self.delta_cdf.fraction_above(-tolerance_ms)

    def fraction_regressing_more_than(self, ms: float) -> float:
        """Share of locations that get *worse* by more than ``ms``."""
        return self.delta_cdf.fraction_at_most(-ms)


def ring_transitions(
    measurements: ClientSideMeasurements, ring_order: list[str]
) -> list[RingTransition]:
    """Per-location latency deltas between consecutive rings.

    Positive deltas mean the bigger ring is faster (the common case);
    small negative deltas are the fairness cost the paper bounds (90% of
    users lose at most a few ms, 99% less than 10 ms).
    """
    by_location = measurements.by_location()
    transitions: list[RingTransition] = []
    for smaller, bigger in zip(ring_order, ring_order[1:]):
        deltas: list[float] = []
        weights: list[float] = []
        for rows in by_location.values():
            small_row = rows.get(smaller)
            big_row = rows.get(bigger)
            if small_row is None or big_row is None:
                continue
            deltas.append(small_row.median_fetch_ms - big_row.median_fetch_ms)
            weights.append(float(small_row.users))
        if deltas:
            transitions.append(
                RingTransition(
                    smaller=smaller,
                    bigger=bigger,
                    delta_cdf=WeightedCdf(deltas, weights),
                )
            )
    return transitions
