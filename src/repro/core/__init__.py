"""The paper's analysis pipeline: inflation, amortisation, paths, coverage."""

from .amortization import AmortizationResult, amortize_apnic, amortize_cdn, amortize_ideal
from .cdf import WeightedCdf
from .coverage import CoverageCurve, combined_coverage_curve, coverage_curve
from .efficiency import DeploymentPoint, efficiency_vs_latency, latency_size_correlation
from .localroot import AdoptionOutcome, simulate_local_root_adoption
from .unicast import UnicastComparison, compare_with_unicast
from .viz import render_cdf_grid, render_series
from .inflation import (
    EFFICIENCY_EPS_MS,
    InflationResult,
    cdn_geographic_inflation,
    cdn_latency_inflation,
    root_geographic_inflation,
    root_latency_inflation,
)
from .pageload_analysis import (
    RTTS_PER_PAGE_LOAD,
    RingLatencyResult,
    RingTransition,
    ring_latency_cdfs,
    ring_transitions,
)
from .paths import (
    PathLengthDistribution,
    inflation_by_path_length,
    modal_length_by_location,
    path_length_distribution,
)
from .redundant import RedundancyStats, Table5Episode, analyze_redundancy, find_bug_episode
from .report import format_cdf_series, format_cdf_summary, format_table
from .representativeness import OverlapTable, favorite_site_cdf, overlap_table
from .stats import BoxStats, box_stats, weighted_mean, weighted_median

__all__ = [
    "AdoptionOutcome",
    "simulate_local_root_adoption",
    "UnicastComparison",
    "compare_with_unicast",
    "render_cdf_grid",
    "render_series",
    "AmortizationResult",
    "amortize_apnic",
    "amortize_cdn",
    "amortize_ideal",
    "WeightedCdf",
    "CoverageCurve",
    "combined_coverage_curve",
    "coverage_curve",
    "DeploymentPoint",
    "efficiency_vs_latency",
    "latency_size_correlation",
    "EFFICIENCY_EPS_MS",
    "InflationResult",
    "cdn_geographic_inflation",
    "cdn_latency_inflation",
    "root_geographic_inflation",
    "root_latency_inflation",
    "RTTS_PER_PAGE_LOAD",
    "RingLatencyResult",
    "RingTransition",
    "ring_latency_cdfs",
    "ring_transitions",
    "PathLengthDistribution",
    "inflation_by_path_length",
    "modal_length_by_location",
    "path_length_distribution",
    "RedundancyStats",
    "Table5Episode",
    "analyze_redundancy",
    "find_bug_episode",
    "format_cdf_series",
    "format_cdf_summary",
    "format_table",
    "OverlapTable",
    "favorite_site_cdf",
    "overlap_table",
    "BoxStats",
    "box_stats",
    "weighted_mean",
    "weighted_median",
]
