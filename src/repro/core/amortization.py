"""Query amortisation over user populations (§4.3, Fig. 3/8/9/11a).

The paper's methodological contribution for "does root latency matter":
divide each recursive's daily root query volume by the number of users
it serves, then look at the user-weighted CDF.  Three lines:

* **CDN** — DITL∩CDN joined rows with Microsoft-style user counts;
* **APNIC** — DITL volumes grouped by origin AS, divided by APNIC-style
  per-AS user estimates;
* **Ideal** — a hypothetical resolver querying each TLD exactly once per
  TTL, amortised over the same user counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dns.records import RootZone
from ..ditl.join import JoinedRecursive
from ..users.counts import ApnicUserCounts
from .cdf import WeightedCdf

__all__ = ["AmortizationResult", "amortize_cdn", "amortize_apnic", "amortize_ideal"]


@dataclass(slots=True)
class AmortizationResult:
    """Queries-per-user-per-day CDF plus its provenance."""

    label: str
    cdf: WeightedCdf
    covered_users: float

    @property
    def median(self) -> float:
        return self.cdf.median

    def fraction_at_most(self, queries_per_day: float) -> float:
        return self.cdf.fraction_at_most(queries_per_day)


def amortize_cdn(
    rows: list[JoinedRecursive], include_junk: bool = False, label: str = "CDN"
) -> AmortizationResult:
    """Amortise DITL volumes over the joined CDN user counts.

    ``include_junk`` switches to the Appendix-B.1 variant (Fig. 8) that
    keeps invalid-TLD and PTR queries in the numerator.
    """
    values: list[float] = []
    weights: list[float] = []
    for row in rows:
        if row.users <= 0:
            continue
        queries = row.daily_all_queries if include_junk else row.daily_valid_queries
        if queries <= 0:
            continue
        values.append(queries / row.users)
        weights.append(float(row.users))
    if not values:
        raise ValueError("no joined rows with users and queries")
    cdf = WeightedCdf(values, weights)
    return AmortizationResult(label=label, cdf=cdf, covered_users=cdf.total_weight)


def amortize_apnic(
    volumes_by_asn: dict[int, float],
    apnic: ApnicUserCounts,
    label: str = "APNIC",
) -> AmortizationResult:
    """Amortise per-AS DITL volumes over APNIC user estimates."""
    values: list[float] = []
    weights: list[float] = []
    for asn, queries in volumes_by_asn.items():
        users = apnic.users_of(asn)
        if users <= 0 or queries <= 0:
            continue
        values.append(queries / users)
        weights.append(float(users))
    if not values:
        raise ValueError("no AS volumes matched APNIC estimates")
    cdf = WeightedCdf(values, weights)
    return AmortizationResult(label=label, cdf=cdf, covered_users=cdf.total_weight)


def amortize_ideal(
    rows: list[JoinedRecursive], zone: RootZone, label: str = "Ideal"
) -> AmortizationResult:
    """The once-per-TTL hypothetical, over the same user population."""
    ideal_daily = zone.ideal_daily_root_queries()
    values: list[float] = []
    weights: list[float] = []
    for row in rows:
        if row.users <= 0:
            continue
        values.append(ideal_daily / row.users)
        weights.append(float(row.users))
    if not values:
        raise ValueError("no joined rows with users")
    cdf = WeightedCdf(values, weights)
    return AmortizationResult(label=label, cdf=cdf, covered_users=cdf.total_weight)
