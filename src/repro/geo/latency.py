"""Propagation-delay model.

The paper expresses both inflation metrics in terms of the speed of light
in fiber, :data:`SPEED_OF_LIGHT_FIBER_KM_PER_MS` (about 2/3 of *c*, i.e.
200 km/ms):

* *Geographic inflation* (Eq. 1) converts extra great-circle kilometres to
  milliseconds at the full fiber rate: ``2 d / c_f`` — 1000 km of detour is
  10 ms of RTT.
* *Latency inflation* (Eq. 2) lower-bounds achievable RTT by
  ``3 d / c_f`` following Katz-Bassett et al.: real paths rarely beat
  two-thirds of the fiber propagation speed end to end, because fiber does
  not follow great circles and equipment adds delay.

Real measured paths additionally pay a per-AS-hop forwarding/queueing
penalty and multiplicative stretch because physical routes are not
geodesics; :func:`path_rtt_ms` models a measured RTT along an AS-level
path expressed as a list of geographic waypoints.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .coords import GeoPoint

__all__ = [
    "SPEED_OF_LIGHT_FIBER_KM_PER_MS",
    "geographic_rtt_ms",
    "optimal_rtt_ms",
    "km_to_inflation_ms",
    "path_rtt_ms",
]

#: Speed of light in fiber: ~200 km per millisecond (2e8 m/s).
SPEED_OF_LIGHT_FIBER_KM_PER_MS = 200.0

#: Fixed per-AS-hop processing/queueing cost for a round trip, ms.
DEFAULT_HOP_RTT_COST_MS = 1.0

#: Multiplicative stretch of physical fiber routes over great circles.
DEFAULT_PATH_STRETCH = 1.2


def geographic_rtt_ms(distance_km: float) -> float:
    """RTT of a perfect great-circle fiber path: ``2 d / c_f`` (Eq. 1 units)."""
    return 2.0 * distance_km / SPEED_OF_LIGHT_FIBER_KM_PER_MS


def optimal_rtt_ms(distance_km: float) -> float:
    """Paper's lower bound on achievable RTT: ``3 d / c_f`` (Eq. 2).

    Routes rarely achieve latency below the great-circle distance divided
    by ``2 c_f / 3`` one way, i.e. ``3 d / c_f`` round trip.
    """
    return 3.0 * distance_km / SPEED_OF_LIGHT_FIBER_KM_PER_MS


def km_to_inflation_ms(extra_km: float) -> float:
    """Convert extra great-circle kilometres to geographic-inflation ms."""
    return geographic_rtt_ms(extra_km)


def path_rtt_ms(
    waypoints: Sequence[GeoPoint],
    rng: np.random.Generator | None = None,
    stretch: float = DEFAULT_PATH_STRETCH,
    hop_cost_ms: float = DEFAULT_HOP_RTT_COST_MS,
    jitter_frac: float = 0.05,
) -> float:
    """Simulated measured RTT along a path through geographic waypoints.

    ``waypoints`` is the sequence of locations the traffic traverses at the
    AS level (client, each intermediate AS's chosen PoP, destination).  The
    RTT is the summed great-circle legs at the Eq. 2 achievable rate
    (``3 d / c_f``) scaled by ``stretch`` for non-geodesic fiber, plus a
    per-hop cost, plus (optionally) multiplicative noise.
    """
    if len(waypoints) < 2:
        raise ValueError("a path needs at least two waypoints")
    total_km = 0.0
    previous = waypoints[0]
    for point in waypoints[1:]:
        total_km += previous.distance_km(point)
        previous = point
    rtt = optimal_rtt_ms(total_km) * stretch + hop_cost_ms * (len(waypoints) - 1)
    if rng is not None and jitter_frac > 0.0:
        rtt *= float(rng.lognormal(mean=0.0, sigma=jitter_frac))
    return rtt
