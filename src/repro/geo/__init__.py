"""Geography substrate: spherical coordinates, distances, latency floors."""

from .coords import EARTH_RADIUS_KM, GeoPoint, great_circle_km, jitter_around, pairwise_distance_km
from .latency import (
    SPEED_OF_LIGHT_FIBER_KM_PER_MS,
    geographic_rtt_ms,
    km_to_inflation_ms,
    optimal_rtt_ms,
    path_rtt_ms,
)
from .rng import derive_seed, make_rng, spawn

__all__ = [
    "EARTH_RADIUS_KM",
    "GeoPoint",
    "great_circle_km",
    "jitter_around",
    "pairwise_distance_km",
    "SPEED_OF_LIGHT_FIBER_KM_PER_MS",
    "geographic_rtt_ms",
    "km_to_inflation_ms",
    "optimal_rtt_ms",
    "path_rtt_ms",
    "derive_seed",
    "make_rng",
    "spawn",
]
