"""Geographic coordinates and great-circle geometry.

The simulator models the Earth as a sphere of radius 6371 km.  All
distances are great-circle distances in kilometres; the latency model in
:mod:`repro.geo.latency` converts them to round-trip times.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "EARTH_RADIUS_KM",
    "GeoPoint",
    "great_circle_km",
    "pairwise_distance_km",
    "jitter_around",
]

EARTH_RADIUS_KM = 6371.0


@dataclass(frozen=True, slots=True)
class GeoPoint:
    """A point on the Earth's surface.

    Latitude is in degrees north (``-90..90``), longitude in degrees east
    (``-180..180``).
    """

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude out of range: {self.lat}")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude out of range: {self.lon}")

    def distance_km(self, other: "GeoPoint") -> float:
        """Great-circle distance to ``other`` in kilometres."""
        return great_circle_km(self.lat, self.lon, other.lat, other.lon)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        ns = "N" if self.lat >= 0 else "S"
        ew = "E" if self.lon >= 0 else "W"
        return f"({abs(self.lat):.2f}{ns}, {abs(self.lon):.2f}{ew})"


def great_circle_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Haversine great-circle distance between two points, in kilometres."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlam = math.radians(lon2 - lon1)
    a = math.sin(dphi / 2.0) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(a)))


def pairwise_distance_km(
    lats1: np.ndarray, lons1: np.ndarray, lats2: np.ndarray, lons2: np.ndarray
) -> np.ndarray:
    """Vectorised haversine distance matrix.

    Returns an array of shape ``(len(lats1), len(lats2))`` of great-circle
    distances in kilometres.  Used for bulk catchment and coverage
    computations where per-point Python calls would dominate runtime.
    """
    phi1 = np.radians(np.asarray(lats1, dtype=float))[:, None]
    phi2 = np.radians(np.asarray(lats2, dtype=float))[None, :]
    lam1 = np.radians(np.asarray(lons1, dtype=float))[:, None]
    lam2 = np.radians(np.asarray(lons2, dtype=float))[None, :]
    a = (
        np.sin((phi2 - phi1) / 2.0) ** 2
        + np.cos(phi1) * np.cos(phi2) * np.sin((lam2 - lam1) / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_KM * np.arcsin(np.minimum(1.0, np.sqrt(a)))


def jitter_around(point: GeoPoint, radius_km: float, rng: np.random.Generator) -> GeoPoint:
    """Return a point uniformly jittered within ``radius_km`` of ``point``.

    Uses a locally flat approximation, which is fine for the metro-scale
    radii (tens of kilometres) this is used for.  Results are clamped to
    valid latitude/longitude ranges.
    """
    distance = radius_km * math.sqrt(rng.uniform(0.0, 1.0))
    bearing = rng.uniform(0.0, 2.0 * math.pi)
    dlat = (distance / EARTH_RADIUS_KM) * math.cos(bearing)
    coslat = max(0.01, math.cos(math.radians(point.lat)))
    dlon = (distance / EARTH_RADIUS_KM) * math.sin(bearing) / coslat
    lat = max(-90.0, min(90.0, point.lat + math.degrees(dlat)))
    lon = point.lon + math.degrees(dlon)
    if lon > 180.0:
        lon -= 360.0
    elif lon < -180.0:
        lon += 360.0
    return GeoPoint(lat, lon)
