"""Deterministic random-number utilities.

Every stochastic component of the simulator draws from a
:class:`numpy.random.Generator` seeded through this module, so a scenario
built twice from the same root seed is bit-identical.  Seeds for subsystems
are derived from the root seed plus a human-readable label, which keeps the
streams independent and makes it possible to regenerate any single
subsystem in isolation.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..obs import metrics

__all__ = ["derive_seed", "make_rng", "spawn"]

_MASK64 = (1 << 64) - 1


def derive_seed(root_seed: int, label: str) -> int:
    """Derive a stable 64-bit seed from ``root_seed`` and a label.

    Uses BLAKE2b rather than :func:`hash` because the latter is salted per
    process and would destroy reproducibility across runs.
    """
    digest = hashlib.blake2b(
        f"{root_seed}:{label}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little") & _MASK64


def make_rng(root_seed: int, label: str) -> np.random.Generator:
    """Create a generator seeded from ``root_seed`` and ``label``."""
    metrics.counter("rng.streams.total").inc()
    return np.random.default_rng(derive_seed(root_seed, label))


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` independent child generators."""
    metrics.counter("rng.streams.total").inc(count)
    return [np.random.default_rng(s) for s in rng.integers(0, _MASK64, size=count, dtype=np.uint64)]
