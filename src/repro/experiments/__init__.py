"""Experiment runners: one per table and figure of the paper.

Importing this package registers every experiment; use
:func:`run_experiment`/:func:`list_experiments` to drive them.
"""

from . import figures_cdn, figures_local, figures_roots, figures_system, tables  # noqa: F401
from .base import (
    ExperimentResult,
    experiment,
    list_experiments,
    run_experiment,
    write_series_csv,
)
from .scenario import SCALES, Scenario, ScenarioConfig, default_scenario
from .validation import SHAPE_CHECKS, ShapeCheck, ValidationReport, validate_scenario

__all__ = [
    "ExperimentResult",
    "write_series_csv",
    "experiment",
    "list_experiments",
    "run_experiment",
    "SCALES",
    "Scenario",
    "ScenarioConfig",
    "default_scenario",
    "SHAPE_CHECKS",
    "ShapeCheck",
    "ValidationReport",
    "validate_scenario",
]
