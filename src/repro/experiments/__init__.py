"""Experiment runners: one per table and figure of the paper.

Importing this package registers every experiment; use
:func:`run_experiment`/:func:`run_experiments`/:func:`list_experiments`
to drive them.
"""

from ..engine import ArtifactCache, ExperimentResults, RunReport, run_experiments
from . import figures_cdn, figures_local, figures_roots, figures_system, tables, whatif  # noqa: F401
from .base import (
    RESULT_SCHEMA_VERSION,
    ExperimentResult,
    execute_experiment,
    experiment,
    list_experiments,
    run_experiment,
    write_series_csv,
)
from .digest import canonical_payload, result_digest
from .scenario import SCALES, STAGES, Scenario, ScenarioConfig, ScenarioParams, default_scenario
from .validation import SHAPE_CHECKS, ShapeCheck, ValidationReport, validate_scenario

__all__ = [
    "ArtifactCache",
    "ExperimentResult",
    "ExperimentResults",
    "RESULT_SCHEMA_VERSION",
    "RunReport",
    "write_series_csv",
    "canonical_payload",
    "result_digest",
    "execute_experiment",
    "experiment",
    "list_experiments",
    "run_experiment",
    "run_experiments",
    "SCALES",
    "STAGES",
    "Scenario",
    "ScenarioConfig",
    "ScenarioParams",
    "default_scenario",
    "SHAPE_CHECKS",
    "ShapeCheck",
    "ValidationReport",
    "validate_scenario",
]
