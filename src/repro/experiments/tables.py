"""Tables 1–4: operator survey, dataset summaries, join overlap."""

from __future__ import annotations

from ..core import format_table, overlap_table
from .base import ExperimentResult, experiment
from .scenario import Scenario

#: §7.3's operator survey.  Eleven of twelve root organizations answered;
#: these are the paper's aggregated responses (there is no system to
#: simulate here — the survey is reproduced as the paper reports it).
SURVEY_GROWTH_REASONS = {
    "Latency": 8,
    "DDoS Resilience": 9,
    "ISP Resilience": 5,
    "Other": 3,
}
SURVEY_FUTURE_TRENDS = {
    "Acceleration of Growth": 1,
    "Deceleration of Growth": 4,
    "Maintain Growth Rate": 4,
    "Cannot Share": 1,
}


@experiment("table1")
def table1(scenario: Scenario) -> ExperimentResult:
    result = ExperimentResult("table1", "Root operator survey (Table 1)")
    result.add(
        "reasons for past growth",
        format_table(
            [{"reason": k, "organizations": str(v)} for k, v in SURVEY_GROWTH_REASONS.items()]
        ),
    )
    result.add(
        "future growth",
        format_table(
            [{"trend": k, "organizations": str(v)} for k, v in SURVEY_FUTURE_TRENDS.items()]
        ),
    )
    result.data.update(
        {f"growth/{k}": v for k, v in SURVEY_GROWTH_REASONS.items()}
    )
    result.data.update(
        {f"future/{k}": v for k, v in SURVEY_FUTURE_TRENDS.items()}
    )
    return result


@experiment("table2")
def table2(scenario: Scenario) -> ExperimentResult:
    """Dataset summary, computed from the generated datasets."""
    capture = scenario.capture_2018
    stats = scenario.filtered_2018.stats
    rows = [
        {
            "dataset": "DITL packet traces (2018)",
            "measurements": f"{capture.total_daily_queries * capture.duration_days:.3g} queries",
            "duration": f"{capture.duration_days:g} days",
            "granularity": f"{len(capture.distinct_slash24s())} /24s",
        },
        {
            "dataset": "DITL ∩ CDN",
            "measurements": f"{sum(r.daily_valid_queries for r in scenario.joined_2018):.3g} queries/day",
            "duration": "joined",
            "granularity": f"{len(scenario.joined_2018)} recursives",
        },
        {
            "dataset": "CDN user counts",
            "measurements": f"{scenario.cdn_counts.total_observed_users:.3g} users",
            "duration": "1 month",
            "granularity": f"{len(scenario.cdn_counts)} egress IPs",
        },
        {
            "dataset": "APNIC user counts",
            "measurements": f"{sum(scenario.apnic_counts.by_asn.values()):.3g} users",
            "duration": "daily",
            "granularity": f"{len(scenario.apnic_counts)} ASes",
        },
        {
            "dataset": "CDN server-side logs",
            "measurements": f"{sum(r.samples for r in scenario.server_logs.rows):.3g} RTTs",
            "duration": "1 week",
            "granularity": f"{len(scenario.server_logs)} rows",
        },
        {
            "dataset": "CDN client-side measurements",
            "measurements": f"{sum(r.samples for r in scenario.client_measurements.rows):.3g} fetches",
            "duration": "1 week",
            "granularity": f"{len(scenario.client_measurements)} rows",
        },
        {
            "dataset": "RIPE-Atlas-like probes",
            "measurements": f"{len(scenario.atlas.probes)} probes",
            "duration": "1 hour",
            "granularity": f"{len(scenario.atlas.asns())} ASes",
        },
    ]
    result = ExperimentResult("table2", "Dataset summary (Table 2)")
    result.add("datasets", format_table(rows))
    result.data["ditl_daily_queries"] = capture.total_daily_queries
    result.data["fraction_invalid"] = stats.fraction_invalid
    result.data["fraction_ipv6"] = stats.fraction_ipv6
    result.data["fraction_private"] = stats.fraction_private
    result.data["joined_recursives"] = len(scenario.joined_2018)
    return result


#: Table 3 is qualitative; reproduced as a catalogue with our synthetic
#: equivalents' caveats.
_TABLE3_ROWS = [
    {"dataset": "CDN server-side logs",
     "strengths": "client→front-end mapping, global coverage",
     "weaknesses": "cannot hold population fixed across rings"},
    {"dataset": "CDN client-side measurements",
     "strengths": "fixed population across rings, global coverage",
     "weaknesses": "front-end unknown, smaller scale"},
    {"dataset": "CDN user counts",
     "strengths": "precise per-recursive estimates",
     "weaknesses": "NAT undercounting, partial coverage"},
    {"dataset": "APNIC user counts",
     "strengths": "public, global coverage",
     "weaknesses": "per-AS granularity, unvalidated"},
    {"dataset": "DITL packet traces",
     "strengths": "global coverage",
     "weaknesses": "noisy, only above the recursive"},
    {"dataset": "DITL ∩ CDN",
     "strengths": "attributes queries to users",
     "weaknesses": "excludes IPv6"},
    {"dataset": "RIPE Atlas", "strengths": "historic data, reproducible",
     "weaknesses": "limited, biased coverage"},
    {"dataset": "ISI resolver trace", "strengths": "precise, below the recursive",
     "weaknesses": "one site, no user context"},
    {"dataset": "Author machines", "strengths": "precise, at the end user",
     "weaknesses": "two users only"},
]


@experiment("table3")
def table3(scenario: Scenario) -> ExperimentResult:
    result = ExperimentResult("table3", "Dataset strengths & weaknesses (Table 3)")
    result.add("catalogue", format_table(_TABLE3_ROWS))
    result.data["n_datasets"] = len(_TABLE3_ROWS)
    return result


@experiment("table4")
def table4(scenario: Scenario) -> ExperimentResult:
    """Join representativeness with and without the /24 aggregation."""
    table = overlap_table(scenario.join_stats_2018_ip, scenario.join_stats_2018)
    result = ExperimentResult("table4", "DITL∩CDN overlap (Table 4)")
    result.add("overlap", format_table(table.rows()))
    result.data["ip/ditl_recursives"] = table.by_ip.frac_ditl_recursives
    result.data["ip/ditl_volume"] = table.by_ip.frac_ditl_volume
    result.data["slash24/ditl_recursives"] = table.by_slash24.frac_ditl_recursives
    result.data["slash24/ditl_volume"] = table.by_slash24.frac_ditl_volume
    result.data["slash24/cdn_recursives"] = table.by_slash24.frac_cdn_recursives
    result.data["slash24/cdn_users"] = table.by_slash24.frac_cdn_users
    return result
