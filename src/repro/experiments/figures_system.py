"""Cross-system experiments: Fig. 6 (AS paths) and Fig. 7 (efficiency,
coverage)."""

from __future__ import annotations

import numpy as np

from ..core import (
    cdn_geographic_inflation,
    coverage_curve,
    combined_coverage_curve,
    efficiency_vs_latency,
    format_table,
    inflation_by_path_length,
    path_length_distribution,
    root_geographic_inflation,
)
from .base import ExperimentResult, experiment
from .scenario import Scenario


def _ring_order(scenario: Scenario) -> list[str]:
    return sorted(scenario.cdn.rings, key=lambda name: int(name.lstrip("R")))


@experiment("fig06a")
def fig06a(scenario: Scenario) -> ExperimentResult:
    """AS-path-length distribution to the CDN and to each letter."""
    orgs = scenario.internet.orgs
    result = ExperimentResult("fig06a", "AS path lengths (Fig. 6a)")
    cdn_routes = scenario.atlas.traceroute_all(scenario.cdn.largest_ring)
    distributions = {"CDN": path_length_distribution(cdn_routes, orgs, "CDN")}
    all_roots_shares = {bucket: 0.0 for bucket in (2, 3, 4, 5)}
    letters = [
        name
        for name in sorted(scenario.letters_2018)
        if scenario.letters_2018[name].n_global_sites >= 2
    ]
    for name in letters:
        routes = scenario.atlas.traceroute_all(scenario.letters_2018[name])
        distributions[name] = path_length_distribution(routes, orgs, name)
        for bucket in all_roots_shares:
            all_roots_shares[bucket] += distributions[name].share(bucket)
    all_roots = {bucket: share / len(letters) for bucket, share in all_roots_shares.items()}

    rows = []
    for name, distribution in distributions.items():
        rows.append(
            {
                "destination": name,
                "2 ASes": f"{distribution.share(2):.2f}",
                "3 ASes": f"{distribution.share(3):.2f}",
                "4 ASes": f"{distribution.share(4):.2f}",
                "5+ ASes": f"{distribution.share(5):.2f}",
            }
        )
        result.data[f"{name}/share_2as"] = distribution.share(2)
        result.data[f"{name}/share_4plus"] = distribution.share(4) + distribution.share(5)
    rows.append(
        {
            "destination": "All Roots",
            "2 ASes": f"{all_roots[2]:.2f}",
            "3 ASes": f"{all_roots[3]:.2f}",
            "4 ASes": f"{all_roots[4]:.2f}",
            "5+ ASes": f"{all_roots[5]:.2f}",
        }
    )
    result.data["all_roots/share_2as"] = all_roots[2]
    result.add("path length shares", format_table(rows))
    return result


@experiment("fig06b")
def fig06b(scenario: Scenario) -> ExperimentResult:
    """Geographic inflation vs AS path length (box stats per bucket)."""
    orgs = scenario.internet.orgs
    result = ExperimentResult("fig06b", "Inflation vs AS path length (Fig. 6b)")
    roots_geo = root_geographic_inflation(scenario.joined_2018, scenario.letters_2018)
    cdn_geo = cdn_geographic_inflation(scenario.server_logs, scenario.cdn)
    largest = _ring_order(scenario)[-1]

    cases = {"CDN": (scenario.cdn.largest_ring, cdn_geo.per_location.get(largest, {}))}
    for name in sorted(roots_geo.names):
        cases[name] = (scenario.letters_2018[name], roots_geo.per_location.get(name, {}))

    rows = []
    for name, (deployment, inflation_map) in cases.items():
        routes = scenario.atlas.traceroute_all(deployment)
        if not inflation_map:
            continue
        boxes = inflation_by_path_length(routes, orgs, inflation_map)
        for bucket, box in boxes.items():
            bucket_label = f"{bucket} ASes" if bucket < 4 else "4+ ASes"
            rows.append(
                {
                    "destination": name,
                    "path_length": bucket_label,
                    "min": f"{box.minimum:.1f}",
                    "q1": f"{box.q1:.1f}",
                    "median": f"{box.median:.1f}",
                    "q3": f"{box.q3:.1f}",
                    "max": f"{box.maximum:.1f}",
                    "locations": str(box.count),
                }
            )
            result.data[f"{name}/{bucket}/median"] = box.median
    result.add("inflation by path length", format_table(rows))
    return result


@experiment("fig07a")
def fig07a(scenario: Scenario) -> ExperimentResult:
    """Median latency and efficiency versus deployment size."""
    result = ExperimentResult("fig07a", "Latency & efficiency vs sites (Fig. 7a)")
    roots_geo = root_geographic_inflation(scenario.joined_2018, scenario.letters_2018)
    cdn_geo = cdn_geographic_inflation(scenario.server_logs, scenario.cdn)

    median_latency: dict[str, float] = {}
    n_sites: dict[str, int] = {}
    for name in roots_geo.names:
        deployment = scenario.letters_2018[name]
        rtts = scenario.atlas.median_rtts(deployment)
        if rtts:
            median_latency[name] = float(np.median(rtts))
            n_sites[name] = deployment.n_global_sites
    for name in _ring_order(scenario):
        ring = scenario.cdn.rings[name]
        rtts = scenario.atlas.median_rtts(ring)
        if rtts:
            median_latency[name] = float(np.median(rtts))
            n_sites[name] = ring.n_global_sites

    combined = roots_geo
    combined.per_deployment.update(cdn_geo.per_deployment)
    points = efficiency_vs_latency(combined, median_latency, n_sites)
    rows = [
        {
            "deployment": p.name,
            "global_sites": str(p.n_global_sites),
            "median_latency_ms": f"{p.median_latency_ms:.1f}",
            "efficiency": f"{p.efficiency:.2f}",
        }
        for p in points
    ]
    result.add("per deployment", format_table(rows))
    for p in points:
        result.data[f"{p.name}/latency"] = p.median_latency_ms
        result.data[f"{p.name}/efficiency"] = p.efficiency
        result.data[f"{p.name}/sites"] = p.n_global_sites
    return result


@experiment("fig07b")
def fig07b(scenario: Scenario) -> ExperimentResult:
    """Coverage-radius curves for rings, letters, and All Roots."""
    result = ExperimentResult("fig07b", "Site coverage of users (Fig. 7b)")
    curves = []
    for name in _ring_order(scenario):
        curves.append(coverage_curve(scenario.cdn.rings[name], scenario.user_base))
    for name in sorted(scenario.letters_2018):
        deployment = scenario.letters_2018[name]
        if deployment.n_global_sites >= 20:
            curves.append(coverage_curve(deployment, scenario.user_base))
    all_roots = combined_coverage_curve(
        list(scenario.letters_2018.values()), scenario.user_base
    )
    curves.append(all_roots)

    rows = []
    for curve in curves:
        result.add_series(
            curve.name, list(zip(curve.radii_km, curve.covered_fraction))
        )
        rows.append(
            {
                "deployment": curve.name,
                **{
                    f"{int(radius)}km": f"{fraction:.2f}"
                    for radius, fraction in zip(curve.radii_km, curve.covered_fraction)
                },
            }
        )
        result.data[f"{curve.name}/at_500km"] = curve.at(500.0)
        result.data[f"{curve.name}/at_1000km"] = curve.at(1000.0)
    result.add("covered user fraction by radius", format_table(rows))
    return result
