"""Canonical result digests — the golden-regression currency.

A digest is a SHA-256 over a canonical JSON rendering of everything an
:class:`~repro.experiments.base.ExperimentResult` asserts about the
paper: id, title, sections, the machine-readable ``data`` dict, and
every plotted series point.  Floats go through JSON's shortest-roundtrip
``repr``, so two results digest equal **iff** they are bitwise equal —
which is exactly the determinism contract the engine already promises
(same scale/seed/params/code → same bytes, any worker count).

``tests/test_golden.py`` compares these digests against the checked-in
``tests/goldens/`` snapshots; ``scripts/update_goldens.py`` regenerates
the snapshots after an intentional behaviour change.
"""

from __future__ import annotations

import hashlib
import json
import numbers

__all__ = ["canonical_payload", "result_digest"]


def _normalise(obj):
    """Reduce ``obj`` to a deterministic JSON-serialisable structure.

    Numpy scalars and arrays collapse to plain ints/floats/lists, so a
    digest never depends on how a number happens to be boxed.
    """
    if isinstance(obj, bool):  # before Integral: bool is an int subclass
        return obj
    if isinstance(obj, numbers.Integral):
        return int(obj)
    if isinstance(obj, numbers.Real):
        return float(obj)
    if isinstance(obj, str) or obj is None:
        return obj
    if isinstance(obj, dict):
        return {str(k): _normalise(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if hasattr(obj, "tolist"):  # numpy arrays
        return _normalise(obj.tolist())
    if isinstance(obj, (list, tuple)):
        return [_normalise(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted((_normalise(v) for v in obj), key=repr)
    return repr(obj)


def canonical_payload(result) -> dict:
    """The digestable view of one result (stable keys, normalised values)."""
    return {
        "id": result.id,
        "title": result.title,
        "sections": _normalise(result.sections),
        "data": _normalise(result.data),
        "series": _normalise(result.series),
    }


def result_digest(result) -> str:
    """Hex SHA-256 of the canonical JSON rendering of ``result``."""
    payload = json.dumps(
        canonical_payload(result), sort_keys=True, separators=(",", ":"), allow_nan=True
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
