"""Experiment result container and registry plumbing.

``run_experiment`` is the single-experiment entry point; it routes
through the same engine path as :func:`repro.engine.run_experiments`
(a one-element batch), so both populate ``result.report`` and the
scenario's :class:`RunReport` identically.  Both consult the scenario's
content-addressed artifact cache: a rerun of an experiment whose
``(id, scale, seed, params, code)`` key is already cached replays the
stored result instead of recomputing it.
"""

from __future__ import annotations

import csv
import os
import time
from collections.abc import Callable
from dataclasses import dataclass, field

from .. import faults
from ..engine import ExperimentRecord
from ..obs import get_logger, metrics, trace
from .scenario import Scenario

__all__ = [
    "RESULT_SCHEMA_VERSION",
    "ExperimentResult",
    "execute_experiment",
    "experiment",
    "run_experiment",
    "list_experiments",
    "write_series_csv",
]

#: Bumped whenever the ExperimentResult field layout changes; cached
#: results carrying an older version are ignored and recomputed.
#: (v3: the ``experiment_id`` field was renamed to ``id``; v4: the
#: deprecated ``experiment_id`` alias was removed.)
RESULT_SCHEMA_VERSION = 4

_log = get_logger("engine.experiment")


@dataclass(slots=True)
class ExperimentResult:
    """What one table/figure reproduction produced.

    ``sections`` carry the human-readable rows/series the paper reports;
    ``data`` carries the machine-readable key numbers tests and
    EXPERIMENTS.md assert on; ``report`` carries the engine's
    observability record (wall time, cache hit/miss) for this run.
    """

    id: str
    title: str
    sections: list[tuple[str, str]] = field(default_factory=list)
    data: dict = field(default_factory=dict)
    #: plottable line series: line label → [(x, y), ...] — the exact
    #: points a figure would draw.
    series: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    version: int = RESULT_SCHEMA_VERSION
    report: ExperimentRecord | None = None

    def add(self, heading: str, body: str) -> None:
        self.sections.append((heading, body))

    def add_series(self, label: str, points: list[tuple[float, float]]) -> None:
        self.series[label] = points

    def to_text(self) -> str:
        lines = [f"== {self.id}: {self.title} =="]
        for heading, body in self.sections:
            lines.append(f"-- {heading} --")
            lines.append(body)
        return "\n".join(lines)


def write_series_csv(result: ExperimentResult, directory: str) -> list[str]:
    """Write each line series of ``result`` to ``directory`` as CSV.

    Returns the written paths.  File names are
    ``<experiment>__<line>.csv`` with a sanitised line label.
    """
    if not result.series:
        return []
    os.makedirs(directory, exist_ok=True)
    written: list[str] = []
    for label, points in result.series.items():
        safe = "".join(c if c.isalnum() or c in "-_" else "_" for c in label)
        path = os.path.join(directory, f"{result.id}__{safe}.csv")
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(["x", "y"])
            writer.writerows(points)
        written.append(path)
    return written


_REGISTRY: dict[str, Callable[[Scenario], ExperimentResult]] = {}


def experiment(experiment_id: str):
    """Decorator registering a runner under ``experiment_id``."""

    def decorate(func: Callable[[Scenario], ExperimentResult]):
        if experiment_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")
        _REGISTRY[experiment_id] = func
        func.experiment_id = experiment_id
        return func

    return decorate


def execute_experiment(experiment_id: str, scenario: Scenario) -> ExperimentResult:
    """The engine's execution core: run one experiment, cache-aware.

    Results are content-addressed like any other stage: when the
    scenario's cache already holds a result for ``(experiment_id, scale,
    seed, params, code)``, that result is replayed without touching the
    substrate.  Either way the returned result carries a fresh
    ``.report`` record and the run is appended to ``scenario.report``.

    Both :func:`run_experiment` and
    :func:`repro.engine.run_experiments` (serial and pooled) funnel
    through this one function, so report population is identical no
    matter which entry point is used.
    """
    try:
        runner = _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}") from None

    with trace.span(
        f"experiment.{experiment_id}", kind="experiment", experiment=experiment_id
    ) as span:
        # Chaos chokepoints: an injected hang stalls here (the engine's
        # per-experiment timeout is what contains it); an injected
        # exception takes the same path a genuinely buggy experiment would.
        hang = faults.maybe_fire("worker_hang", experiment_id)
        if hang is not None:
            time.sleep(hang.delay())
        if faults.maybe_fire("worker_exception", experiment_id) is not None:
            raise faults.InjectedFault(
                f"injected worker_exception in {experiment_id} "
                f"(attempt {faults.current_attempt()})"
            )
        key = scenario.stage_key(f"result__{experiment_id}")

        def _usable(hit, cached):
            return (
                hit
                and isinstance(cached, ExperimentResult)
                and cached.version == RESULT_SCHEMA_VERSION
            )

        hit, cached = scenario.cache.load(key)
        if _usable(hit, cached):
            result = cached
            size = scenario.cache.size_of(key)
        else:
            # Single-flight across processes (double-checked locking):
            # a concurrent invocation computing the same result key
            # blocks here, then replays the winner's artifact.
            with scenario.cache.lock(key):
                hit, cached = scenario.cache.load(key)
                if _usable(hit, cached):
                    result = cached
                    size = scenario.cache.size_of(key)
                else:
                    hit = False
                    result = runner(scenario)
                    size = scenario.cache.store(key, result)
        span.set(cache_hit=hit, size_bytes=size)
        metrics.counter("engine.experiments.total").inc()
        if hit:
            metrics.counter("engine.experiments.cache_hits.total").inc()
    record = ExperimentRecord.from_span(span)
    result.report = record
    scenario.report.add_experiment(record)
    _log.debug(
        "experiment %s: %s in %.3fs", experiment_id, "replayed" if hit else "ran", span.dur_s
    )
    return result


def run_experiment(experiment_id: str, scenario: Scenario) -> ExperimentResult:
    """Run one registered experiment against a scenario.

    A thin wrapper over the engine: equivalent to
    ``run_experiments([experiment_id], scenario)[0]``, so the returned
    result's ``report`` is populated exactly as the batch entry point
    would.  Unlike the batch entry point — which degrades to partial
    results — this strict single-experiment form raises
    :class:`~repro.engine.ExperimentFailure` if the experiment is
    quarantined after the engine's retries.
    """
    from ..engine import ExperimentFailure, run_experiments

    results = run_experiments([experiment_id], scenario)
    if results[0] is None:
        raise ExperimentFailure(results.report.experiments[-1])
    return results[0]


def list_experiments() -> list[str]:
    return sorted(_REGISTRY)
