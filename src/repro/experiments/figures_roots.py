"""Root-DNS experiments: Fig. 2 (inflation), Fig. 3/8/9 (amortisation),
Fig. 10 (favorite sites), Fig. 11 (2020 DITL)."""

from __future__ import annotations

from ..core import (
    amortize_apnic,
    amortize_cdn,
    amortize_ideal,
    favorite_site_cdf,
    format_cdf_summary,
    root_geographic_inflation,
    root_latency_inflation,
)
from ..ditl import volumes_by_asn
from .base import ExperimentResult, experiment
from .scenario import Scenario

_GI_POINTS = tuple(range(0, 145, 5))
_LI_POINTS = tuple(range(0, 205, 5))
_QPD_POINTS = tuple(
    base * 10.0**exp for exp in range(-3, 4) for base in (1.0, 2.0, 5.0)
)


@experiment("fig02a")
def fig02a(scenario: Scenario) -> ExperimentResult:
    """Geographic inflation per root query, CDF of users (Eq. 1)."""
    inflation = root_geographic_inflation(scenario.joined_2018, scenario.letters_2018)
    result = ExperimentResult("fig02a", "Root DNS geographic inflation (Fig. 2a)")
    ordered = sorted(
        inflation.names, key=lambda n: scenario.letters_2018[n].n_global_sites
    )
    for name in ordered:
        cdf = inflation.per_deployment[name]
        sites = scenario.letters_2018[name].n_global_sites
        result.add(f"{name} - {sites}", format_cdf_summary(name, cdf))
        result.add_series(f"{name} - {sites}", cdf.series(_GI_POINTS))
        result.data[f"{name}/median"] = cdf.median
        result.data[f"{name}/efficiency"] = inflation.efficiency(name)
        result.data[f"{name}/frac_over_20ms"] = cdf.fraction_above(20.0)
    if inflation.combined is not None:
        result.add("All Roots", format_cdf_summary("All Roots", inflation.combined))
        result.add_series("All Roots", inflation.combined.series(_GI_POINTS))
        result.data["all/median"] = inflation.combined.median
        result.data["all/zero_mass"] = inflation.combined.fraction_at_zero(0.5)
        result.data["all/frac_over_20ms"] = inflation.combined.fraction_above(20.0)
        result.data["all/frac_any_inflation"] = 1.0 - inflation.combined.fraction_at_zero(0.5)
    result.data["series_points"] = _GI_POINTS
    return result


@experiment("fig02b")
def fig02b(scenario: Scenario) -> ExperimentResult:
    """Latency inflation per root query over the TCP subset (Eq. 2)."""
    inflation = root_latency_inflation(
        scenario.joined_2018, scenario.letters_2018, scenario.capture_2018
    )
    result = ExperimentResult("fig02b", "Root DNS latency inflation (Fig. 2b)")
    ordered = sorted(
        inflation.names, key=lambda n: scenario.letters_2018[n].n_global_sites
    )
    for name in ordered:
        cdf = inflation.per_deployment[name]
        sites = scenario.letters_2018[name].n_global_sites
        result.add(f"{name} - {sites}", format_cdf_summary(name, cdf))
        result.add_series(f"{name} - {sites}", cdf.series(_LI_POINTS))
        result.data[f"{name}/median"] = cdf.median
        result.data[f"{name}/frac_over_100ms"] = cdf.fraction_above(100.0)
    if inflation.combined is not None:
        result.add("All Roots", format_cdf_summary("All Roots", inflation.combined))
        result.add_series("All Roots", inflation.combined.series(_LI_POINTS))
        result.data["all/median"] = inflation.combined.median
        result.data["all/frac_over_100ms"] = inflation.combined.fraction_above(100.0)
    result.data["letters"] = sorted(inflation.names)
    return result


def _amortization_result(
    scenario: Scenario, experiment_id: str, title: str, include_junk: bool, by_slash24: bool
) -> ExperimentResult:
    rows = scenario.joined_2018 if by_slash24 else scenario.joined_2018_ip
    cdn = amortize_cdn(rows, include_junk=include_junk)
    apnic_volumes = (
        scenario.asn_volumes_2018
        if not include_junk
        else volumes_by_asn(scenario.filtered_2018, scenario.mapper, include_junk=True)[0]
    )
    apnic = amortize_apnic(apnic_volumes, scenario.apnic_counts)
    ideal = amortize_ideal(scenario.joined_2018, scenario.zone)
    result = ExperimentResult(experiment_id, title)
    for line in (ideal, cdn, apnic):
        result.add(line.label, format_cdf_summary(line.label, line.cdf, unit="q/d"))
        result.add_series(line.label, line.cdf.series(_QPD_POINTS))
        result.data[f"{line.label.lower()}/median"] = line.median
        result.data[f"{line.label.lower()}/frac_at_most_1"] = line.fraction_at_most(1.0)
    result.data["series_points"] = _QPD_POINTS
    return result


@experiment("fig03")
def fig03(scenario: Scenario) -> ExperimentResult:
    """Root queries per user per day (Ideal / CDN / APNIC)."""
    return _amortization_result(
        scenario, "fig03", "Queries per user per day (Fig. 3)",
        include_junk=False, by_slash24=True,
    )


@experiment("fig08")
def fig08(scenario: Scenario) -> ExperimentResult:
    """Fig. 3 with invalid-TLD and PTR queries re-included (App. B.1)."""
    return _amortization_result(
        scenario, "fig08", "Queries per user per day, junk included (Fig. 8)",
        include_junk=True, by_slash24=True,
    )


@experiment("fig09")
def fig09(scenario: Scenario) -> ExperimentResult:
    """Fig. 3 without the /24 join (App. B.2) — far less representative."""
    return _amortization_result(
        scenario, "fig09", "Queries per user per day, exact-IP join (Fig. 9)",
        include_junk=False, by_slash24=False,
    )


@experiment("fig10")
def fig10(scenario: Scenario) -> ExperimentResult:
    """Fraction of a /24's queries missing its favorite site (Eq. 3)."""
    result = ExperimentResult("fig10", "Queries away from the favorite site (Fig. 10)")
    for name in scenario.filtered_2018.letter_names:
        cdf = favorite_site_cdf(scenario.filtered_2018, name)
        if cdf is None:
            continue
        deployment = scenario.letters_2018[name]
        total_sites = len(deployment.sites)
        label = f"{name} ({deployment.n_global_sites}G {total_sites}T)"
        result.add(label, format_cdf_summary(label, cdf, unit=""))
        result.data[f"{name}/frac_single_site"] = cdf.fraction_at_most(1e-9)
        result.data[f"{name}/p90"] = cdf.quantile(0.90)
    return result


@experiment("fig11a")
def fig11a(scenario: Scenario) -> ExperimentResult:
    """2020-DITL amortisation (App. B.3): conclusions do not change."""
    rows = scenario.joined_2020
    cdn = amortize_cdn(rows)
    ideal = amortize_ideal(rows, scenario.zone)
    apnic_volumes, _ = volumes_by_asn(scenario.filtered_2020, scenario.mapper)
    apnic = amortize_apnic(apnic_volumes, scenario.apnic_counts)
    result = ExperimentResult("fig11a", "Queries per user per day, 2020 DITL (Fig. 11a)")
    for line in (ideal, cdn, apnic):
        result.add(line.label, format_cdf_summary(line.label, line.cdf, unit="q/d"))
        result.data[f"{line.label.lower()}/median"] = line.median
    return result


@experiment("fig11b")
def fig11b(scenario: Scenario) -> ExperimentResult:
    """2020-DITL geographic inflation (App. B.3)."""
    inflation = root_geographic_inflation(scenario.joined_2020, scenario.letters_2020)
    result = ExperimentResult("fig11b", "Root geographic inflation, 2020 DITL (Fig. 11b)")
    for name in sorted(
        inflation.names, key=lambda n: scenario.letters_2020[n].n_global_sites
    ):
        cdf = inflation.per_deployment[name]
        sites = scenario.letters_2020[name].n_global_sites
        result.add(f"{name} - {sites}", format_cdf_summary(name, cdf))
        result.data[f"{name}/median"] = cdf.median
    if inflation.combined is not None:
        result.add("All Roots", format_cdf_summary("All Roots", inflation.combined))
        result.data["all/frac_over_20ms"] = inflation.combined.fraction_above(20.0)
    return result
