"""CDN experiments: Fig. 1 (map), Fig. 4 (latency), Fig. 5 (inflation),
Fig. 14 (relative-latency map)."""

from __future__ import annotations

import numpy as np

from ..core import (
    RTTS_PER_PAGE_LOAD,
    cdn_geographic_inflation,
    cdn_latency_inflation,
    format_cdf_summary,
    format_table,
    ring_latency_cdfs,
    ring_transitions,
    root_geographic_inflation,
    root_latency_inflation,
)
from .base import ExperimentResult, experiment
from .scenario import Scenario

_RTT_POINTS = tuple(range(0, 125, 5))
_PAGE_POINTS = tuple(range(0, 1250, 50))
_INFL_POINTS = tuple(range(0, 205, 5))
_DELTA_POINTS = tuple(range(-100, 420, 20))


def _ring_order(scenario: Scenario) -> list[str]:
    return sorted(scenario.cdn.rings, key=lambda name: int(name.lstrip("R")))


@experiment("fig01")
def fig01(scenario: Scenario) -> ExperimentResult:
    """Ring footprints and user concentrations (the Fig. 1 map, as data)."""
    result = ExperimentResult("fig01", "CDN rings and user populations (Fig. 1)")
    world = scenario.internet.world
    rows = []
    locations = list(scenario.user_base)
    location_regions = [location.region_id for location in locations]
    for name in _ring_order(scenario):
        ring = scenario.cdn.rings[name]
        regions = {site.region_id for site in ring.sites}
        min_km = ring.min_global_distance_km_many(location_regions)
        covered = sum(
            location.users
            for location, km in zip(locations, min_km)
            if km <= 1000.0
        )
        rows.append(
            {
                "ring": name,
                "front_ends": str(len(ring.sites)),
                "distinct_regions": str(len(regions)),
                "users_within_1000km": f"{covered / scenario.user_base.total_users:.1%}",
            }
        )
        result.data[f"{name}/front_ends"] = len(ring.sites)
        result.data[f"{name}/coverage_1000km"] = covered / scenario.user_base.total_users
    result.add("rings", format_table(rows))
    site_rows = [
        {
            "site": site.name,
            "region": world.region(site.region_id).name,
            "continent": world.region(site.region_id).continent,
            "lat": f"{world.region(site.region_id).location.lat:.1f}",
            "lon": f"{world.region(site.region_id).location.lon:.1f}",
        }
        for site in scenario.cdn.largest_ring.sites[:20]
    ]
    result.add("sample front-ends (largest ring)", format_table(site_rows))
    return result


@experiment("fig04a")
def fig04a(scenario: Scenario) -> ExperimentResult:
    """Ring latency per RTT and per page load, from Atlas probes."""
    samples = {
        name: scenario.atlas.median_rtts(scenario.cdn.rings[name])
        for name in _ring_order(scenario)
    }
    latency = ring_latency_cdfs(samples)
    result = ExperimentResult("fig04a", "CDN latency per RTT / page load (Fig. 4a)")
    for ring in latency.rings:
        per_rtt = latency.per_rtt[ring]
        per_page = latency.per_page_load(ring)
        result.add(
            ring,
            format_cdf_summary(f"{ring}/RTT", per_rtt)
            + "\n"
            + format_cdf_summary(f"{ring}/page", per_page),
        )
        result.add_series(f"{ring} per RTT", per_rtt.series(_RTT_POINTS))
        result.add_series(f"{ring} per page load", per_page.series(_PAGE_POINTS))
        result.data[f"{ring}/median_rtt"] = per_rtt.median
        result.data[f"{ring}/median_page"] = per_page.median
    rings = latency.rings
    result.data["page_gap_smallest_largest"] = (
        latency.per_page_load(rings[0]).median - latency.per_page_load(rings[-1]).median
    )
    result.data["rtts_per_page_load"] = RTTS_PER_PAGE_LOAD
    return result


@experiment("fig04b")
def fig04b(scenario: Scenario) -> ExperimentResult:
    """Latency change per ⟨region, AS⟩ when moving to the next ring."""
    transitions = ring_transitions(scenario.client_measurements, _ring_order(scenario))
    result = ExperimentResult("fig04b", "Ring-transition latency change (Fig. 4b)")
    for transition in transitions:
        cdf = transition.delta_cdf
        result.add(transition.label, format_cdf_summary(transition.label, cdf))
        result.add_series(transition.label, cdf.series(_DELTA_POINTS))
        key = transition.label.replace(" ", "")
        result.data[f"{key}/median"] = cdf.median
        result.data[f"{key}/frac_no_regression"] = transition.fraction_improved_or_equal()
        result.data[f"{key}/frac_regress_10ms"] = transition.fraction_regressing_more_than(10.0)
    return result


@experiment("fig05a")
def fig05a(scenario: Scenario) -> ExperimentResult:
    """CDN geographic inflation per RTT, with the root comparison."""
    inflation = cdn_geographic_inflation(scenario.server_logs, scenario.cdn)
    result = ExperimentResult("fig05a", "CDN geographic inflation (Fig. 5a)")
    for name in _ring_order(scenario):
        cdf = inflation.per_deployment[name]
        result.add(name, format_cdf_summary(name, cdf))
        result.add_series(name, cdf.series(_INFL_POINTS))
        result.data[f"{name}/zero_mass"] = cdf.fraction_at_zero(0.5)
        result.data[f"{name}/frac_under_10ms"] = cdf.fraction_at_most(10.0)
        result.data[f"{name}/median"] = cdf.median
    roots = root_geographic_inflation(scenario.joined_2018, scenario.letters_2018)
    if roots.combined is not None:
        result.add("Root DNS", format_cdf_summary("Root DNS", roots.combined))
        result.add_series("Root DNS", roots.combined.series(_INFL_POINTS))
        result.data["roots/zero_mass"] = roots.combined.fraction_at_zero(0.5)
        result.data["roots/frac_over_10ms"] = roots.combined.fraction_above(10.0)
    return result


@experiment("fig05b")
def fig05b(scenario: Scenario) -> ExperimentResult:
    """CDN latency inflation per RTT, with the root comparison."""
    inflation = cdn_latency_inflation(scenario.server_logs, scenario.cdn)
    result = ExperimentResult("fig05b", "CDN latency inflation (Fig. 5b)")
    for name in _ring_order(scenario):
        cdf = inflation.per_deployment[name]
        result.add(name, format_cdf_summary(name, cdf))
        result.add_series(name, cdf.series(_INFL_POINTS))
        result.data[f"{name}/frac_under_30ms"] = cdf.fraction_at_most(30.0)
        result.data[f"{name}/frac_under_60ms"] = cdf.fraction_at_most(60.0)
        result.data[f"{name}/frac_under_100ms"] = cdf.fraction_at_most(100.0)
    roots = root_latency_inflation(
        scenario.joined_2018, scenario.letters_2018, scenario.capture_2018
    )
    if roots.combined is not None:
        result.add("Root DNS", format_cdf_summary("Root DNS", roots.combined))
        result.data["roots/frac_over_100ms"] = roots.combined.fraction_above(100.0)
    return result


@experiment("fig14")
def fig14(scenario: Scenario) -> ExperimentResult:
    """Largest-ring front-ends and relative user latency by region."""
    ring = scenario.cdn.largest_ring
    latencies: dict[int, list[tuple[float, float]]] = {}
    for row in scenario.server_logs.for_ring(ring.name):
        latencies.setdefault(row.region_id, []).append(
            (row.median_rtt_ms, float(row.users))
        )
    region_latency = {
        region: sum(v * w for v, w in pairs) / sum(w for _, w in pairs)
        for region, pairs in latencies.items()
    }
    values = np.array(list(region_latency.values()))
    low, high = float(values.min()), float(np.percentile(values, 95))
    world = scenario.internet.world
    rows = []
    for region_id, latency in sorted(region_latency.items()):
        region = world.region(region_id)
        relative = 0.0 if high <= low else float(np.clip((latency - low) / (high - low), 0, 1))
        rows.append(
            {
                "region": region.name,
                "continent": region.continent,
                "users": str(region.population),
                "relative_latency": f"{relative:.2f}",
            }
        )
    result = ExperimentResult("fig14", "Relative latency to the largest ring (Fig. 14)")
    result.add("regions (first 25)", format_table(rows[:25]))
    min_km_of = dict(
        zip(region_latency, ring.min_global_distance_km_many(list(region_latency)))
    )
    near = [region_latency[r] for r in region_latency if min_km_of[r] <= 500.0]
    far = [region_latency[r] for r in region_latency if min_km_of[r] > 2_000.0]
    if near and far:
        result.data["near_median_ms"] = float(np.median(near))
        result.data["far_median_ms"] = float(np.median(far))
    result.data["n_regions"] = len(region_latency)
    return result
