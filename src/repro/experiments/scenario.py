"""Scenario: one fully wired synthetic world with staged, cached artifacts.

Building every dataset the paper uses is expensive, and most experiments
need only a few of them; :class:`Scenario` therefore materialises each
artifact on first use.  Each artifact is a named **stage** handled by
:mod:`repro.engine`: stages are keyed by ``(stage, scale, seed,
params-digest, code-version)``, memoised in-process, and pickled into a
content-addressed on-disk cache so a second run of any experiment — in
this process, another process, or a later CLI invocation — is
near-instant.  Every materialisation is recorded (wall time, cache
hit/miss, artifact size) in ``scenario.report``.

Two presets:

* ``small`` — a reduced world for unit tests (seconds);
* ``medium`` — the paper-scale world (508 regions, ~2k ASes, a billion
  users) used by the benchmark harness.
"""

from __future__ import annotations

import functools
import time
import tracemalloc
from dataclasses import dataclass

from ..anycast import (
    CdnSpec,
    CdnSystem,
    IndependentDeployment,
    LETTERS_2018,
    LETTERS_2020,
    build_cdn,
    build_root_system,
)
from ..dns import DomainUniverse, RootZone, StaticRootLatency
from ..ditl import (
    DitlCapture,
    FilteredDitl,
    JoinStats,
    JoinedRecursive,
    generate_ditl,
    join_ditl_cdn,
    preprocess,
    volumes_by_asn,
)
from .. import faults
from ..engine import (
    ArtifactCache,
    RunReport,
    StageKey,
    StageRecord,
    code_version,
    params_digest,
)
from ..measurement import (
    AtlasPlatform,
    ClientSideMeasurements,
    Geolocator,
    ServerSideLogs,
    collect_client_measurements,
    collect_server_logs,
)
from ..net import IpToAsnMapper
from ..obs import get_logger, metrics, rss_peak_bytes, trace
from ..topology import GeneratedInternet, TopologyParams, build_internet
from ..users import (
    ApnicUserCounts,
    CdnUserCounts,
    UserBase,
    build_apnic_counts,
    build_cdn_counts,
    build_recursives,
    build_user_base,
    build_world,
)
from ..users.recursives import RecursivePopulation

__all__ = [
    "ScenarioConfig",
    "ScenarioParams",
    "Scenario",
    "default_scenario",
    "SCALES",
]

_log = get_logger("engine.scenario")


@dataclass(frozen=True, slots=True)
class ScenarioParams:
    """The frozen identity of one scenario: everything that selects a world."""

    scale: str = "small"
    seed: int = 0


@dataclass(frozen=True, slots=True)
class ScenarioConfig:
    """Size knobs for one scenario scale."""

    name: str
    region_scale: float
    topology: TopologyParams
    total_population: int
    n_tlds: int
    n_domains: int
    n_probes: int
    serverlog_samples: int
    clientside_samples: int
    isi_users: int
    isi_days: float
    author_days: float


def _config(scale: str, seed: int) -> ScenarioConfig:
    if scale == "small":
        return ScenarioConfig(
            name="small",
            region_scale=0.12,
            topology=TopologyParams.small(seed=seed),
            total_population=50_000_000,
            n_tlds=200,
            n_domains=1_500,
            n_probes=200,
            serverlog_samples=12,
            clientside_samples=8,
            isi_users=40,
            isi_days=5.0,
            author_days=7.0,
        )
    if scale == "medium":
        return ScenarioConfig(
            name="medium",
            region_scale=1.0,
            topology=TopologyParams(seed=seed),
            total_population=1_000_000_000,
            n_tlds=1_000,
            n_domains=5_000,
            n_probes=1_000,
            serverlog_samples=24,
            clientside_samples=16,
            isi_users=120,
            isi_days=14.0,
            author_days=28.0,
        )
    raise ValueError(f"unknown scale {scale!r} (use 'small' or 'medium')")


#: Every persisted stage name, in dependency-safe build order (filled in
#: by the ``_stage`` decorator as the class body executes).
STAGES: list[str] = []


def _stage(method):
    """Declare one named, disk-cacheable Scenario stage."""

    name = method.__name__
    STAGES.append(name)

    @functools.wraps(method)
    def wrapper(self):
        return self._materialise(name, method)

    return property(wrapper)


class Scenario:
    """One synthetic world plus every dataset derived from it.

    Construction is keyword-only: ``Scenario(scale="small", seed=0)`` or
    ``Scenario(params=ScenarioParams(...))``.
    """

    def __init__(
        self,
        *,
        scale: str | None = None,
        seed: int | None = None,
        params: ScenarioParams | None = None,
        cache: ArtifactCache | None = None,
    ):
        if params is not None:
            if scale is not None or seed is not None:
                raise TypeError("pass either params= or scale=/seed=, not both")
        else:
            params = ScenarioParams(
                scale="small" if scale is None else scale,
                seed=0 if seed is None else seed,
            )
        self.params = params
        self.seed = params.seed
        self.config = _config(params.scale, params.seed)
        self.cache = cache if cache is not None else ArtifactCache()
        self.report = RunReport()
        self._artifact_cache: dict[str, object] = {}
        self._params_digest = params_digest(self.config)

    # -- engine plumbing ---------------------------------------------------
    def stage_key(self, name: str) -> StageKey:
        """The content-addressed cache key of one stage of this scenario."""
        return StageKey(
            stage=name,
            scale=self.params.scale,
            seed=self.params.seed,
            params=self._params_digest,
            code=code_version(),
        )

    def _materialise(self, name: str, build):
        """In-memory memo → disk cache → build (recording a StageRecord).

        Each materialisation runs inside a ``stage.<name>`` span; the
        recorded wall time is the span's *exclusive* time, so a stage
        that recursed into its dependencies reports only its own share
        and the report's stage times sum to true wall time.
        """
        memo = self._artifact_cache
        if name in memo:
            return memo[name]
        if trace.enabled and tracemalloc.is_tracing():
            tracemalloc.reset_peak()
        with trace.span(
            f"stage.{name}",
            kind="stage",
            stage=name,
            scale=self.params.scale,
            seed=self.params.seed,
        ) as span:
            slow = faults.maybe_fire("slow_stage", name)
            if slow is not None:
                time.sleep(slow.delay())
            key = self.stage_key(name)
            hit, value = self.cache.load(key)
            size = self.cache.size_of(key) if hit else None
            if not hit:
                # Single-flight across processes: take the per-key lock,
                # then re-check — the usual reason it was held is that a
                # concurrent invocation was building exactly this stage.
                with self.cache.lock(key):
                    hit, value = self.cache.load(key)
                    if hit:
                        size = self.cache.size_of(key)
                    else:
                        value = build(self)
                        size = self.cache.store(key, value)
            memo[name] = value
            span.set(cache_hit=hit, size_bytes=size)
            metrics.counter("engine.stages.built.total").inc()
            if hit:
                metrics.counter("engine.stages.cache_hits.total").inc()
            rss = rss_peak_bytes()
            if rss is not None:
                metrics.gauge("engine.stage.peak_rss.bytes").set_max(rss)
                span.set(rss_peak_bytes=rss)
            if trace.enabled and tracemalloc.is_tracing():
                span.set(py_peak_bytes=tracemalloc.get_traced_memory()[1])
        self.report.add_stage(StageRecord.from_span(span))
        _log.debug(
            "stage %s: %s in %.3fs (scale=%s seed=%d)",
            name, "hit" if hit else "built", span.dur_s, self.params.scale, self.params.seed,
        )
        return value

    def prepare(self, stages: list[str] | None = None) -> RunReport:
        """Materialise stages up front (all of them by default).

        Warms both the in-memory memo and the on-disk cache, so a
        subsequent process pool — or a later CLI invocation — finds
        every substrate ready.  Returns ``self.report``.
        """
        for name in STAGES if stages is None else stages:
            getattr(self, name)
        return self.report

    # -- substrate ---------------------------------------------------------
    @_stage
    def internet(self) -> GeneratedInternet:
        world = build_world(
            seed=self.seed,
            total_population=self.config.total_population,
            region_scale=self.config.region_scale,
        )
        return build_internet(world, self.config.topology)

    @_stage
    def user_base(self) -> UserBase:
        return build_user_base(self.internet, seed=self.seed + 1)

    @_stage
    def recursives(self) -> RecursivePopulation:
        return build_recursives(self.internet, self.user_base, seed=self.seed + 2)

    @_stage
    def zone(self) -> RootZone:
        return RootZone(n_tlds=self.config.n_tlds, seed=self.seed + 3)

    @_stage
    def universe(self) -> DomainUniverse:
        return DomainUniverse(self.zone, n_domains=self.config.n_domains, seed=self.seed + 4)

    # -- deployments ---------------------------------------------------------
    @_stage
    def letters_2018(self) -> dict[str, IndependentDeployment]:
        return build_root_system(self.internet, LETTERS_2018, seed=self.seed + 5)

    @_stage
    def letters_2020(self) -> dict[str, IndependentDeployment]:
        return build_root_system(self.internet, LETTERS_2020, seed=self.seed + 6)

    @_stage
    def cdn(self) -> CdnSystem:
        return build_cdn(self.internet, CdnSpec(), seed=self.seed + 7)

    # -- datasets --------------------------------------------------------------
    @_stage
    def capture_2018(self) -> DitlCapture:
        return generate_ditl(
            self.internet, self.letters_2018, self.recursives, self.zone,
            year=2018, seed=self.seed + 8,
        )

    @_stage
    def filtered_2018(self) -> FilteredDitl:
        return preprocess(self.capture_2018)

    @_stage
    def capture_2020(self) -> DitlCapture:
        return generate_ditl(
            self.internet, self.letters_2020, self.recursives, self.zone,
            year=2020, seed=self.seed + 9,
        )

    @_stage
    def filtered_2020(self) -> FilteredDitl:
        return preprocess(self.capture_2020)

    @_stage
    def cdn_counts(self) -> CdnUserCounts:
        return build_cdn_counts(self.recursives, seed=self.seed + 10)

    @_stage
    def apnic_counts(self) -> ApnicUserCounts:
        return build_apnic_counts(
            self.user_base, seed=self.seed + 11, cloud_asns=self.internet.cloud_asns
        )

    @_stage
    def geolocator(self) -> Geolocator:
        return Geolocator(self.internet.world, self.recursives, seed=self.seed + 12)

    @_stage
    def mapper(self) -> IpToAsnMapper:
        return IpToAsnMapper(self.internet.plan, seed=self.seed + 13)

    @_stage
    def _join_2018(self) -> tuple[list[JoinedRecursive], JoinStats]:
        return join_ditl_cdn(
            self.filtered_2018, self.cdn_counts, self.geolocator, self.mapper,
            by_slash24=True,
        )

    @property
    def joined_2018(self) -> list[JoinedRecursive]:
        return self._join_2018[0]

    @property
    def join_stats_2018(self) -> JoinStats:
        return self._join_2018[1]

    @_stage
    def _join_2018_ip(self) -> tuple[list[JoinedRecursive], JoinStats]:
        return join_ditl_cdn(
            self.filtered_2018, self.cdn_counts, self.geolocator, self.mapper,
            by_slash24=False,
        )

    @property
    def joined_2018_ip(self) -> list[JoinedRecursive]:
        return self._join_2018_ip[0]

    @property
    def join_stats_2018_ip(self) -> JoinStats:
        return self._join_2018_ip[1]

    @_stage
    def _join_2020(self) -> tuple[list[JoinedRecursive], JoinStats]:
        return join_ditl_cdn(
            self.filtered_2020, self.cdn_counts, self.geolocator, self.mapper,
            by_slash24=True,
        )

    @property
    def joined_2020(self) -> list[JoinedRecursive]:
        return self._join_2020[0]

    @_stage
    def _volumes_2018(self) -> tuple[dict[int, float], float]:
        return volumes_by_asn(self.filtered_2018, self.mapper)

    @property
    def asn_volumes_2018(self) -> dict[int, float]:
        volumes, self.apnic_mapped_fraction = self._volumes_2018
        return volumes

    # -- measurement platforms ---------------------------------------------------
    @_stage
    def atlas(self) -> AtlasPlatform:
        return AtlasPlatform(self.internet, n_probes=self.config.n_probes, seed=self.seed + 14)

    @_stage
    def server_logs(self) -> ServerSideLogs:
        return collect_server_logs(
            self.cdn, self.user_base,
            samples_per_location=self.config.serverlog_samples, seed=self.seed + 15,
        )

    @_stage
    def client_measurements(self) -> ClientSideMeasurements:
        return collect_client_measurements(
            self.cdn, self.user_base,
            samples_per_location=self.config.clientside_samples, seed=self.seed + 16,
        )

    # -- DNS local views ------------------------------------------------------------
    @_stage
    def isi_result(self):
        from ..dns import IsiResolverExperiment

        return IsiResolverExperiment(
            self.zone, self.universe, self.root_latency_model,
            n_users=self.config.isi_users, days=self.config.isi_days,
            buggy=True, seed=self.seed + 17,
        ).run()

    @_stage
    def author_result(self):
        from ..dns import AuthorMachineExperiment

        return AuthorMachineExperiment(
            self.zone, self.universe, self.root_latency_model,
            days=self.config.author_days, seed=self.seed + 18,
        ).run()

    @_stage
    def root_latency_model(self) -> StaticRootLatency:
        """Per-letter RTTs as seen from a mid-European eyeball (the ISI
        stand-in's vantage), used by the packet-level resolver sims."""
        letters = self.letters_2018
        probe = self.atlas.probes[0]
        base = {}
        for name, deployment in letters.items():
            flow = deployment.resolve(probe.asn, probe.region_id)
            base[name] = flow.base_rtt_ms if flow else 250.0
        return StaticRootLatency(base)


@functools.lru_cache(maxsize=4)
def default_scenario(scale: str = "small", seed: int = 0) -> Scenario:
    """Shared scenario instances (tests and benches reuse these)."""
    return Scenario(scale=scale, seed=seed)


SCALES = ("small", "medium")
