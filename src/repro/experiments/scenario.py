"""Scenario: one fully wired synthetic world with lazy, cached artifacts.

Building every dataset the paper uses is expensive, and most experiments
need only a few of them; :class:`Scenario` therefore materialises each
artifact on first use and caches it.  Two presets:

* ``small`` — a reduced world for unit tests (seconds);
* ``medium`` — the paper-scale world (508 regions, ~2k ASes, a billion
  users) used by the benchmark harness.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from ..anycast import (
    CdnSpec,
    CdnSystem,
    IndependentDeployment,
    LETTERS_2018,
    LETTERS_2020,
    build_cdn,
    build_root_system,
)
from ..dns import DomainUniverse, RootZone, StaticRootLatency
from ..ditl import (
    DitlCapture,
    FilteredDitl,
    JoinStats,
    JoinedRecursive,
    generate_ditl,
    join_ditl_cdn,
    preprocess,
    volumes_by_asn,
)
from ..measurement import (
    AtlasPlatform,
    ClientSideMeasurements,
    Geolocator,
    ServerSideLogs,
    collect_client_measurements,
    collect_server_logs,
)
from ..net import IpToAsnMapper
from ..topology import GeneratedInternet, TopologyParams, build_internet
from ..users import (
    ApnicUserCounts,
    CdnUserCounts,
    UserBase,
    build_apnic_counts,
    build_cdn_counts,
    build_recursives,
    build_user_base,
    build_world,
)
from ..users.recursives import RecursivePopulation

__all__ = ["ScenarioConfig", "Scenario", "default_scenario", "SCALES"]


@dataclass(frozen=True, slots=True)
class ScenarioConfig:
    """Size knobs for one scenario scale."""

    name: str
    region_scale: float
    topology: TopologyParams
    total_population: int
    n_tlds: int
    n_domains: int
    n_probes: int
    serverlog_samples: int
    clientside_samples: int
    isi_users: int
    isi_days: float
    author_days: float


def _config(scale: str, seed: int) -> ScenarioConfig:
    if scale == "small":
        return ScenarioConfig(
            name="small",
            region_scale=0.12,
            topology=TopologyParams.small(seed=seed),
            total_population=50_000_000,
            n_tlds=200,
            n_domains=1_500,
            n_probes=200,
            serverlog_samples=12,
            clientside_samples=8,
            isi_users=40,
            isi_days=5.0,
            author_days=7.0,
        )
    if scale == "medium":
        return ScenarioConfig(
            name="medium",
            region_scale=1.0,
            topology=TopologyParams(seed=seed),
            total_population=1_000_000_000,
            n_tlds=1_000,
            n_domains=5_000,
            n_probes=1_000,
            serverlog_samples=24,
            clientside_samples=16,
            isi_users=120,
            isi_days=14.0,
            author_days=28.0,
        )
    raise ValueError(f"unknown scale {scale!r} (use 'small' or 'medium')")


def _cached(method):
    """Per-instance memoisation for Scenario artifacts."""

    name = method.__name__

    @functools.wraps(method)
    def wrapper(self):
        cache = self.__dict__.setdefault("_artifact_cache", {})
        if name not in cache:
            cache[name] = method(self)
        return cache[name]

    return property(wrapper)


class Scenario:
    """One synthetic world plus every dataset derived from it."""

    def __init__(self, scale: str = "small", seed: int = 0):
        self.config = _config(scale, seed)
        self.seed = seed

    # -- substrate ---------------------------------------------------------
    @_cached
    def internet(self) -> GeneratedInternet:
        world = build_world(
            seed=self.seed,
            total_population=self.config.total_population,
            region_scale=self.config.region_scale,
        )
        return build_internet(world, self.config.topology)

    @_cached
    def user_base(self) -> UserBase:
        return build_user_base(self.internet, seed=self.seed + 1)

    @_cached
    def recursives(self) -> RecursivePopulation:
        return build_recursives(self.internet, self.user_base, seed=self.seed + 2)

    @_cached
    def zone(self) -> RootZone:
        return RootZone(n_tlds=self.config.n_tlds, seed=self.seed + 3)

    @_cached
    def universe(self) -> DomainUniverse:
        return DomainUniverse(self.zone, n_domains=self.config.n_domains, seed=self.seed + 4)

    # -- deployments ---------------------------------------------------------
    @_cached
    def letters_2018(self) -> dict[str, IndependentDeployment]:
        return build_root_system(self.internet, LETTERS_2018, seed=self.seed + 5)

    @_cached
    def letters_2020(self) -> dict[str, IndependentDeployment]:
        return build_root_system(self.internet, LETTERS_2020, seed=self.seed + 6)

    @_cached
    def cdn(self) -> CdnSystem:
        return build_cdn(self.internet, CdnSpec(), seed=self.seed + 7)

    # -- datasets --------------------------------------------------------------
    @_cached
    def capture_2018(self) -> DitlCapture:
        return generate_ditl(
            self.internet, self.letters_2018, self.recursives, self.zone,
            year=2018, seed=self.seed + 8,
        )

    @_cached
    def filtered_2018(self) -> FilteredDitl:
        return preprocess(self.capture_2018)

    @_cached
    def capture_2020(self) -> DitlCapture:
        return generate_ditl(
            self.internet, self.letters_2020, self.recursives, self.zone,
            year=2020, seed=self.seed + 9,
        )

    @_cached
    def filtered_2020(self) -> FilteredDitl:
        return preprocess(self.capture_2020)

    @_cached
    def cdn_counts(self) -> CdnUserCounts:
        return build_cdn_counts(self.recursives, seed=self.seed + 10)

    @_cached
    def apnic_counts(self) -> ApnicUserCounts:
        return build_apnic_counts(
            self.user_base, seed=self.seed + 11, cloud_asns=self.internet.cloud_asns
        )

    @_cached
    def geolocator(self) -> Geolocator:
        return Geolocator(self.internet.world, self.recursives, seed=self.seed + 12)

    @_cached
    def mapper(self) -> IpToAsnMapper:
        return IpToAsnMapper(self.internet.plan, seed=self.seed + 13)

    @_cached
    def _join_2018(self) -> tuple[list[JoinedRecursive], JoinStats]:
        return join_ditl_cdn(
            self.filtered_2018, self.cdn_counts, self.geolocator, self.mapper,
            by_slash24=True,
        )

    @property
    def joined_2018(self) -> list[JoinedRecursive]:
        return self._join_2018[0]

    @property
    def join_stats_2018(self) -> JoinStats:
        return self._join_2018[1]

    @_cached
    def _join_2018_ip(self) -> tuple[list[JoinedRecursive], JoinStats]:
        return join_ditl_cdn(
            self.filtered_2018, self.cdn_counts, self.geolocator, self.mapper,
            by_slash24=False,
        )

    @property
    def joined_2018_ip(self) -> list[JoinedRecursive]:
        return self._join_2018_ip[0]

    @property
    def join_stats_2018_ip(self) -> JoinStats:
        return self._join_2018_ip[1]

    @_cached
    def _join_2020(self) -> tuple[list[JoinedRecursive], JoinStats]:
        return join_ditl_cdn(
            self.filtered_2020, self.cdn_counts, self.geolocator, self.mapper,
            by_slash24=True,
        )

    @property
    def joined_2020(self) -> list[JoinedRecursive]:
        return self._join_2020[0]

    @_cached
    def asn_volumes_2018(self) -> dict[int, float]:
        volumes, self.apnic_mapped_fraction = volumes_by_asn(self.filtered_2018, self.mapper)
        return volumes

    # -- measurement platforms ---------------------------------------------------
    @_cached
    def atlas(self) -> AtlasPlatform:
        return AtlasPlatform(self.internet, n_probes=self.config.n_probes, seed=self.seed + 14)

    @_cached
    def server_logs(self) -> ServerSideLogs:
        return collect_server_logs(
            self.cdn, self.user_base,
            samples_per_location=self.config.serverlog_samples, seed=self.seed + 15,
        )

    @_cached
    def client_measurements(self) -> ClientSideMeasurements:
        return collect_client_measurements(
            self.cdn, self.user_base,
            samples_per_location=self.config.clientside_samples, seed=self.seed + 16,
        )

    # -- DNS local views ------------------------------------------------------------
    @_cached
    def isi_result(self):
        from ..dns import IsiResolverExperiment

        return IsiResolverExperiment(
            self.zone, self.universe, self.root_latency_model,
            n_users=self.config.isi_users, days=self.config.isi_days,
            buggy=True, seed=self.seed + 17,
        ).run()

    @_cached
    def author_result(self):
        from ..dns import AuthorMachineExperiment

        return AuthorMachineExperiment(
            self.zone, self.universe, self.root_latency_model,
            days=self.config.author_days, seed=self.seed + 18,
        ).run()

    @_cached
    def root_latency_model(self) -> StaticRootLatency:
        """Per-letter RTTs as seen from a mid-European eyeball (the ISI
        stand-in's vantage), used by the packet-level resolver sims."""
        letters = self.letters_2018
        probe = self.atlas.probes[0]
        base = {}
        for name, deployment in letters.items():
            flow = deployment.resolve(probe.asn, probe.region_id)
            base[name] = flow.base_rtt_ms if flow else 250.0
        return StaticRootLatency(base)


@functools.lru_cache(maxsize=4)
def default_scenario(scale: str = "small", seed: int = 0) -> Scenario:
    """Shared scenario instances (tests and benches reuse these)."""
    return Scenario(scale=scale, seed=seed)


SCALES = ("small", "medium")
