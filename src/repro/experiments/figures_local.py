"""Local-perspective experiments: Fig. 12/13 (resolver latency), the
author-machine numbers (§4.3), Appendix C (RTTs per page load), and
Table 5 (the redundant-query bug episode)."""

from __future__ import annotations

import numpy as np

from ..core import analyze_redundancy, find_bug_episode, format_table
from ..web import build_page_corpus, estimate_rtts_per_page_load
from .base import ExperimentResult, experiment
from .scenario import Scenario


@experiment("fig12")
def fig12(scenario: Scenario) -> ExperimentResult:
    """CDF of client DNS latencies at the shared (ISI-style) resolver."""
    isi = scenario.isi_result
    latencies = isi.latency_cdf_ms()
    result = ExperimentResult("fig12", "Client DNS latency at a recursive (Fig. 12)")
    rows = []
    for q in (0.10, 0.25, 0.50, 0.75, 0.90, 0.99):
        rows.append({"quantile": f"p{int(q * 100)}", "latency_ms": f"{np.quantile(latencies, q):.2f}"})
    result.add("latency quantiles", format_table(rows))
    points = [0.01, 0.1, 0.5, 1, 5, 10, 50, 100, 500, 1_000, 5_000, 10_000]
    result.add_series(
        "client DNS latency",
        [(float(x), float((latencies <= x).mean())) for x in points],
    )
    result.data["frac_sub_ms"] = float((latencies < 1.0).mean())
    result.data["median_ms"] = float(np.median(latencies))
    result.data["n_queries"] = int(len(latencies))
    result.data["overall_miss_rate"] = isi.overall_miss_rate
    result.data["median_daily_miss_rate"] = isi.median_daily_miss_rate
    return result


@experiment("fig13")
def fig13(scenario: Scenario) -> ExperimentResult:
    """Per-user-query root latency (0 when cached) — the log-tail CDF."""
    isi = scenario.isi_result
    result = ExperimentResult("fig13", "Root DNS latency per user query (Fig. 13)")
    frac_touching = isi.fraction_queries_touching_root()
    frac_over_100 = isi.fraction_root_latency_over_ms(100.0)
    rows = [
        {"metric": "queries touching a root", "value": f"{frac_touching:.4%}"},
        {"metric": "queries waiting >100 ms on roots", "value": f"{frac_over_100:.4%}"},
    ]
    result.add("root-latency exposure", format_table(rows))
    roots = isi.root_latency_cdf_ms()
    result.add_series(
        "root latency per user query",
        [(float(x), float((roots <= x).mean()))
         for x in (0, 25, 50, 100, 150, 200, 250, 300, 350)],
    )
    result.data["frac_touching_root"] = frac_touching
    result.data["frac_over_100ms"] = frac_over_100
    # Author-machine perspective (§4.3's local numbers).
    author = scenario.author_result
    result.data["author/median_daily_miss_rate"] = author.median_daily_miss_rate
    result.data["author/root_share_of_page_load"] = author.root_share_of_page_load
    result.data["author/root_share_of_browsing"] = author.root_share_of_browsing
    result.add(
        "author machines",
        format_table(
            [
                {"metric": "median daily cache miss rate",
                 "value": f"{author.median_daily_miss_rate:.4f}"},
                {"metric": "root latency / page load time",
                 "value": f"{author.root_share_of_page_load:.4%}"},
                {"metric": "root latency / active browsing",
                 "value": f"{author.root_share_of_browsing:.5%}"},
            ]
        ),
    )
    return result


@experiment("appc")
def appc(scenario: Scenario) -> ExperimentResult:
    """Appendix C: the ≥10-RTTs-per-page-load lower bound."""
    corpus = build_page_corpus(n_pages=9, seed=scenario.seed + 19)
    estimate = estimate_rtts_per_page_load(corpus, loads_per_page=20, seed=scenario.seed + 20)
    result = ExperimentResult("appc", "RTTs per page load (Appendix C)")
    rows = [
        {"metric": "p5 (lower bound)", "value": str(estimate.lower_bound)},
        {"metric": "median RTTs", "value": f"{estimate.median:.1f}"},
        {"metric": "loads within 10 RTTs", "value": f"{estimate.fraction_within(10):.2%}"},
        {"metric": "loads within 20 RTTs", "value": f"{estimate.fraction_within(20):.2%}"},
    ]
    result.add("RTT distribution", format_table(rows))
    result.data["lower_bound"] = estimate.lower_bound
    result.data["median"] = estimate.median
    result.data["frac_within_10"] = estimate.fraction_within(10)
    result.data["frac_within_20"] = estimate.fraction_within(20)
    return result


@experiment("table5")
def table5(scenario: Scenario) -> ExperimentResult:
    """Appendix E: redundancy statistics and one Table-5 bug episode."""
    trace = scenario.isi_result.trace
    stats = analyze_redundancy(trace, ttl_s=float(scenario.zone.ttl_s))
    result = ExperimentResult("table5", "Redundant root queries (Table 5 / App. E)")
    result.add(
        "redundancy",
        format_table(
            [
                {"metric": "root queries", "value": str(stats.total_root_queries)},
                {"metric": "redundant (<1 TTL)", "value": f"{stats.fraction_redundant:.2%}"},
                {"metric": "AAAA share of redundant",
                 "value": f"{stats.fraction_aaaa_of_redundant:.2%}"},
                {"metric": "bug-pattern share of redundant",
                 "value": f"{stats.fraction_bug_pattern_of_redundant:.2%}"},
            ]
        ),
    )
    result.data["fraction_redundant"] = stats.fraction_redundant
    result.data["fraction_bug_pattern"] = stats.fraction_bug_pattern_of_redundant
    episode = find_bug_episode(trace)
    if episode is not None:
        result.add(f"episode: {episode.client_qname}", format_table(episode.to_rows()))
        result.data["episode_steps"] = len(episode.steps)
        result.data["episode_qname"] = episode.client_qname
    return result
