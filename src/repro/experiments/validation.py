"""Reproduction self-check: the paper's qualitative claims as assertions.

``anycast-repro validate`` evaluates every shape target from DESIGN.md §4
against a scenario and reports PASS/FAIL — the same checks the benchmark
suite asserts, available without pytest.
"""

from __future__ import annotations

from dataclasses import dataclass

from .base import run_experiment
from .scenario import Scenario

__all__ = ["ShapeCheck", "SHAPE_CHECKS", "validate_scenario", "ValidationReport"]


@dataclass(frozen=True, slots=True)
class ShapeCheck:
    """One qualitative claim: which experiments it needs and how to test."""

    name: str
    claim: str
    experiments: tuple[str, ...]
    predicate: object  # Callable[[dict[str, dict]], bool]

    def evaluate(self, data: dict[str, dict]) -> bool:
        return bool(self.predicate(data))


SHAPE_CHECKS: tuple[ShapeCheck, ...] = (
    ShapeCheck(
        "root-inflation-ubiquitous",
        ">95% of users see some geographic inflation to the roots (§3.2)",
        ("fig02a",),
        lambda d: d["fig02a"]["all/frac_any_inflation"] > 0.85,
    ),
    ShapeCheck(
        "letters-heavy-latency-tails",
        "some letters inflate >100 ms for 20-40% of users (§3.2)",
        ("fig02b",),
        lambda d: max(
            d["fig02b"][f"{name}/frac_over_100ms"] for name in d["fig02b"]["letters"]
        ) > 0.10,
    ),
    ShapeCheck(
        "all-roots-milder-than-letters",
        "letter preference keeps system-wide inflation below the worst letters (§3.2)",
        ("fig02b",),
        lambda d: d["fig02b"]["all/frac_over_100ms"]
        < max(d["fig02b"][f"{n}/frac_over_100ms"] for n in d["fig02b"]["letters"]),
    ),
    ShapeCheck(
        "one-query-per-user-day",
        "the median user waits for ~1 root query per day (§4.3)",
        ("fig03",),
        lambda d: 0.05 < d["fig03"]["cdn/median"] < 20.0,
    ),
    ShapeCheck(
        "ideal-orders-of-magnitude-below",
        "once-per-TTL querying would be orders of magnitude rarer (§4.3)",
        ("fig03",),
        lambda d: d["fig03"]["ideal/median"] < d["fig03"]["cdn/median"] / 50.0,
    ),
    ShapeCheck(
        "ring-growth-lowers-latency",
        "more front-ends, lower latency; R28→R110 saves ~100 ms/page (§5.2)",
        ("fig04a",),
        lambda d: d["fig04a"]["R28/median_rtt"] >= d["fig04a"]["R110/median_rtt"]
        and d["fig04a"]["page_gap_smallest_largest"] > 0,
    ),
    ShapeCheck(
        "ring-growth-hurts-almost-nobody",
        "growing a ring regresses <1% of locations by >10 ms (§5.2)",
        ("fig04b",),
        lambda d: all(
            v < 0.05 for k, v in d["fig04b"].items() if k.endswith("frac_regress_10ms")
        ),
    ),
    ShapeCheck(
        "cdn-mostly-uninflated",
        "most CDN users see zero geographic inflation; root users do not (§6)",
        ("fig05a",),
        lambda d: d["fig05a"]["R110/zero_mass"] > 0.5
        and d["fig05a"]["roots/zero_mass"] < 0.2,
    ),
    ShapeCheck(
        "cdn-latency-inflation-small",
        "~99% of CDN users under 100 ms of latency inflation (§6)",
        ("fig05b",),
        lambda d: d["fig05b"]["R110/frac_under_100ms"] > 0.85,
    ),
    ShapeCheck(
        "cdn-paths-direct",
        "the CDN is reached in 2 ASes far more often than any letter (§7.1)",
        ("fig06a",),
        lambda d: d["fig06a"]["CDN/share_2as"] > 0.3
        and d["fig06a"]["CDN/share_2as"] > d["fig06a"]["all_roots/share_2as"],
    ),
    ShapeCheck(
        "size-buys-latency-not-efficiency",
        "larger deployments: lower latency, lower efficiency (§7.2)",
        ("fig07a",),
        lambda d: d["fig07a"]["R28/latency"] >= d["fig07a"]["R110/latency"] - 1.0
        and d["fig07a"]["R28/efficiency"] >= d["fig07a"]["R110/efficiency"] - 0.05,
    ),
    ShapeCheck(
        "b-root-efficiency-trap",
        "B root: high efficiency, terrible latency (§7.2)",
        ("fig07a",),
        lambda d: d["fig07a"].get("B/latency", 1e9) > 2.0 * d["fig07a"]["R110/latency"],
    ),
    ShapeCheck(
        "all-roots-coverage",
        "the root system covers users like the largest ring (§7.2)",
        ("fig07b",),
        lambda d: d["fig07b"]["All Roots/at_1000km"] >= d["fig07b"]["R110/at_1000km"] - 0.1,
    ),
    ShapeCheck(
        "junk-dominates-volume",
        "including junk multiplies the per-user median ~20× (App. B.1)",
        ("fig03", "fig08"),
        lambda d: d["fig08"]["cdn/median"] > 4.0 * d["fig03"]["cdn/median"],
    ),
    ShapeCheck(
        "slash24-join-necessary",
        "without the /24 join the amortisation collapses (App. B.2)",
        ("fig03", "fig09"),
        lambda d: d["fig09"]["cdn/median"] < d["fig03"]["cdn/median"],
    ),
    ShapeCheck(
        "favorite-site-affinity",
        ">80% of /24s keep all queries on one site (App. B.2)",
        ("fig10",),
        lambda d: min(
            v for k, v in d["fig10"].items() if k.endswith("frac_single_site")
        ) > 0.5,
    ),
    ShapeCheck(
        "conclusions-stable-2020",
        "the 2020 DITL does not change the conclusions (App. B.3)",
        ("fig03", "fig11a"),
        lambda d: 0.1 < d["fig11a"]["cdn/median"] / d["fig03"]["cdn/median"] < 10.0,
    ),
    ShapeCheck(
        "root-latency-invisible",
        "<1%-ish of queries touch a root; almost none wait >100 ms (§4.3)",
        ("fig13",),
        lambda d: d["fig13"]["frac_touching_root"] < 0.05
        and d["fig13"]["frac_over_100ms"] < 0.005,
    ),
    ShapeCheck(
        "redundant-bug-dominates",
        "most root queries at the instrumented resolver are redundant (App. E)",
        ("table5",),
        lambda d: d["table5"]["fraction_redundant"] > 0.4,
    ),
    ShapeCheck(
        "ten-rtts-per-page",
        "10 RTTs is a sound lower bound per page load (App. C)",
        ("appc",),
        lambda d: 8 <= d["appc"]["lower_bound"] <= 12
        and d["appc"]["frac_within_20"] > 0.6,
    ),
)


@dataclass(slots=True)
class ValidationReport:
    """Outcome of a validate run."""

    results: list[tuple[ShapeCheck, bool]]

    @property
    def passed(self) -> int:
        return sum(1 for _, ok in self.results if ok)

    @property
    def failed(self) -> int:
        return len(self.results) - self.passed

    @property
    def all_passed(self) -> bool:
        return self.failed == 0

    def to_text(self) -> str:
        lines = []
        for check, ok in self.results:
            status = "PASS" if ok else "FAIL"
            lines.append(f"[{status}] {check.name}: {check.claim}")
        lines.append(f"\n{self.passed}/{len(self.results)} shape targets hold")
        return "\n".join(lines)


def validate_scenario(scenario: Scenario) -> ValidationReport:
    """Run every shape check against ``scenario``."""
    needed = sorted({e for check in SHAPE_CHECKS for e in check.experiments})
    data = {e: run_experiment(e, scenario).data for e in needed}
    results = []
    for check in SHAPE_CHECKS:
        try:
            ok = check.evaluate(data)
        except (KeyError, ValueError, ZeroDivisionError):
            ok = False
        results.append((check, ok))
    return ValidationReport(results=results)
