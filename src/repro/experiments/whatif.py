"""Incremental what-if experiment: a canonical delta sequence on K-root.

``whatif01`` drives the paper's running comparative question — "what
happens to K-root's catchments as sites come and go?" — through the
delta machinery (:mod:`repro.anycast.delta`) while replaying the exact
same mutation plans through the full-rebuild oracle.  Its digest locks
two things at once into the golden file:

* the *analysis output* (rerouted users, latency shift) of a canonical
  withdraw → add → withdraw sequence, and
* the *bitwise equivalence* of the delta path against cold rebuilds
  (``delta_matches_rebuild`` — a digest drift here means the delta
  kernel produced different arrays than a fresh propagation).
"""

from __future__ import annotations

import numpy as np

from ..anycast import apply_mutation, plan_add_regions, plan_withdraw, rebuild
from ..anycast.resilience import failure_impact
from .base import ExperimentResult, experiment
from .scenario import Scenario

#: The kernel tables whose equality defines "bitwise identical".
KERNEL_TABLES = (
    "_as_ids",
    "_footprint",
    "_footprint_ok",
    "attachment_region_ids",
    "_cand_att",
    "_cand_region",
    "_cand_ok",
    "_cand_counts",
    "_hosts",
    "_routed_asns",
    "_path_len",
    "_fallback_att",
    "_terminal_host",
    "_hops",
)


def kernels_identical(a, b) -> bool:
    """Bitwise comparison of two :class:`FlowKernel`'s padded tables."""
    for name in KERNEL_TABLES:
        x, y = getattr(a, name), getattr(b, name)
        if x.shape != y.shape or not np.array_equal(x, y):
            return False
    return a._max_mid == b._max_mid and a._host_row == b._host_row


def deployments_identical(a, b) -> bool:
    """Routing-table and kernel equality between two deployments."""
    if dict(a.routing.items()) != dict(b.routing.items()):
        return False
    if a.routing.attachments != b.routing.attachments:
        return False
    return kernels_identical(a.kernel, b.kernel)


#: The canonical mutation sequence: withdraw K's site 0, open two new
#: sites, then lose two of the (renumbered) originals.
SEQUENCE = (
    ("withdraw", (0,)),
    ("add", (3, 7)),
    ("withdraw", (1, 2)),
)


@experiment("whatif01")
def whatif01(scenario: Scenario) -> ExperimentResult:
    """Delta-path what-if sequence on K-root, oracle-checked (ROADMAP 5)."""
    baseline = scenario.letters_2018["K"]
    n_regions = len(scenario.internet.world.regions)

    result = ExperimentResult(
        "whatif01", "Incremental what-if: K-root delta sequence vs rebuild oracle"
    )
    via_delta = baseline
    via_rebuild = baseline
    matches = True
    for step, (kind, arg) in enumerate(SEQUENCE):
        if kind == "withdraw":
            plan_d = plan_withdraw(via_delta, list(arg))
            plan_r = plan_withdraw(via_rebuild, list(arg))
        else:
            regions = [r % n_regions for r in arg]
            plan_d = plan_add_regions(scenario.internet, via_delta, regions)
            plan_r = plan_add_regions(scenario.internet, via_rebuild, regions)
        via_delta = apply_mutation(via_delta, plan_d)
        via_rebuild = rebuild(via_rebuild, plan_r)
        step_ok = deployments_identical(via_delta, via_rebuild)
        matches = matches and step_ok
        result.data[f"step{step}/{kind}/sites"] = len(via_delta.sites)
        result.data[f"step{step}/{kind}/routes"] = len(via_delta.routing)
        result.data[f"step{step}/{kind}/matches_rebuild"] = step_ok

    impact = failure_impact(baseline, via_delta, scenario.user_base)
    result.data["delta_matches_rebuild"] = matches
    result.data["users_measured"] = impact.users_measured
    result.data["users_rerouted"] = impact.users_rerouted
    result.data["rerouted_fraction"] = impact.rerouted_fraction
    result.data["median_rtt_before_ms"] = impact.median_rtt_before_ms
    result.data["median_rtt_after_ms"] = impact.median_rtt_after_ms
    result.data["max_site_share_before"] = impact.max_site_share_before
    result.data["max_site_share_after"] = impact.max_site_share_after
    result.add(
        "Delta vs rebuild",
        f"3-step sequence bitwise-identical to cold rebuilds: {matches}",
    )
    result.add(
        "Impact",
        (
            f"{impact.users_rerouted}/{impact.users_measured} users rerouted "
            f"({impact.rerouted_fraction:.1%}); median RTT "
            f"{impact.median_rtt_before_ms:.2f} → {impact.median_rtt_after_ms:.2f} ms"
        ),
    )
    return result
