"""Synthetic web-page corpus.

Appendix C loads nine CDN-hosted pages twenty times each under a headless
browser and records, per TCP connection, the bytes transferred and the
connection's active interval.  We synthesise pages with the same shape:
one dominant connection (the document plus main bundle) and a spread of
smaller parallel connections (images, scripts, telemetry), many of which
overlap in time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geo import make_rng

__all__ = ["ConnectionTrace", "PageLoadTrace", "PageSpec", "build_page_corpus", "load_page"]


@dataclass(frozen=True, slots=True)
class ConnectionTrace:
    """One TCP connection observed during a page load."""

    bytes_transferred: int
    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        if self.end_s < self.start_s:
            raise ValueError("connection ends before it starts")
        if self.bytes_transferred < 0:
            raise ValueError("negative transfer")

    def overlaps(self, other: "ConnectionTrace") -> bool:
        return not (self.end_s <= other.start_s or other.end_s <= self.start_s)


@dataclass(frozen=True, slots=True)
class PageLoadTrace:
    """All connections of one page load (what Tshark would yield)."""

    page: str
    connections: tuple[ConnectionTrace, ...]

    @property
    def total_bytes(self) -> int:
        return sum(c.bytes_transferred for c in self.connections)


@dataclass(frozen=True, slots=True)
class PageSpec:
    """Statistical shape of one page."""

    name: str
    main_bytes_mean: float        # dominant connection size
    n_subresources_mean: float
    subresource_bytes_mean: float
    parallelism: float            # 0..1, how much connections overlap


def build_page_corpus(n_pages: int = 9, seed: int = 0) -> list[PageSpec]:
    """Nine dynamic, CDN-hosted landing pages of varying heft."""
    rng = make_rng(seed, "pages")
    corpus = []
    for i in range(n_pages):
        corpus.append(
            PageSpec(
                name=f"page{i:02d}",
                main_bytes_mean=float(rng.uniform(150_000, 900_000)),
                n_subresources_mean=float(rng.uniform(8, 30)),
                subresource_bytes_mean=float(rng.uniform(15_000, 120_000)),
                parallelism=float(rng.uniform(0.5, 0.9)),
            )
        )
    return corpus


def load_page(spec: PageSpec, rng: np.random.Generator) -> PageLoadTrace:
    """Simulate one load: a dominant connection plus parallel fetches."""
    main_bytes = max(20_000, int(rng.normal(spec.main_bytes_mean, spec.main_bytes_mean * 0.2)))
    main_duration = float(rng.uniform(0.8, 2.5))
    connections = [ConnectionTrace(main_bytes, 0.0, main_duration)]
    n_sub = max(1, int(rng.poisson(spec.n_subresources_mean)))
    for _ in range(n_sub):
        size = max(500, int(rng.lognormal(np.log(spec.subresource_bytes_mean), 0.9)))
        if rng.uniform() < spec.parallelism:
            start = float(rng.uniform(0.0, main_duration * 0.8))
        else:
            start = main_duration + float(rng.uniform(0.0, 1.0))
        duration = float(rng.uniform(0.05, 0.8))
        connections.append(ConnectionTrace(size, start, start + duration))
    return PageLoadTrace(page=spec.name, connections=tuple(connections))
