"""Page-load RTT accounting (Appendix C).

Browsers open many parallel connections, so summing per-connection RTTs
would badly overcount.  The paper's procedure, which we implement
exactly: start from the connection moving the most data, then add
connections in descending size order only when they do *not* overlap
temporally with any connection already counted.  Per counted connection,
RTTs come from Eq. 4; two handshake RTTs (TCP + TLS) are added once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geo import make_rng
from .page import ConnectionTrace, PageLoadTrace, PageSpec, load_page
from .tcp import DEFAULT_INIT_WINDOW_BYTES, HANDSHAKE_RTTS, transfer_rtts

__all__ = ["page_load_rtts", "RttEstimate", "estimate_rtts_per_page_load"]


def _serial_connections(connections: tuple[ConnectionTrace, ...]) -> list[ConnectionTrace]:
    """The paper's non-overlapping accumulation order."""
    remaining = sorted(connections, key=lambda c: c.bytes_transferred, reverse=True)
    counted: list[ConnectionTrace] = []
    for connection in remaining:
        if all(not connection.overlaps(existing) for existing in counted):
            counted.append(connection)
    return counted


def page_load_rtts(
    trace: PageLoadTrace, init_window: int = DEFAULT_INIT_WINDOW_BYTES
) -> int:
    """Lower-bound RTTs for one observed page load."""
    counted = _serial_connections(trace.connections)
    rtts = sum(transfer_rtts(c.bytes_transferred, init_window) for c in counted)
    return rtts + HANDSHAKE_RTTS


@dataclass(slots=True)
class RttEstimate:
    """Distribution of per-load RTT counts over the measured corpus."""

    rtt_counts: list[int]

    @property
    def lower_bound(self) -> int:
        """The conservative per-page RTT estimate (paper: 10)."""
        return int(np.percentile(self.rtt_counts, 5))

    def fraction_within(self, rtts: int) -> float:
        counts = np.asarray(self.rtt_counts)
        return float((counts <= rtts).mean())

    @property
    def median(self) -> float:
        return float(np.median(self.rtt_counts))


def estimate_rtts_per_page_load(
    corpus: list[PageSpec],
    loads_per_page: int = 20,
    init_window: int = DEFAULT_INIT_WINDOW_BYTES,
    seed: int = 0,
) -> RttEstimate:
    """Appendix C's experiment: N pages × M loads → RTT distribution."""
    rng = make_rng(seed, "pageloads")
    counts = [
        page_load_rtts(load_page(spec, rng), init_window)
        for spec in corpus
        for _ in range(loads_per_page)
    ]
    return RttEstimate(rtt_counts=counts)
