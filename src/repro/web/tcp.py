"""TCP slow-start RTT model (Appendix C, Eq. 4).

For a single connection transferring ``D`` bytes with initial congestion
window ``W``, the number of round trips is lower-bounded by
``N = ceil(log2(D / W))`` — the window doubles each RTT in slow start.
Microsoft (and most of the web) uses an initial window around 15 kB.
"""

from __future__ import annotations

import math

__all__ = ["DEFAULT_INIT_WINDOW_BYTES", "HANDSHAKE_RTTS", "transfer_rtts", "connection_rtts"]

#: ~10 segments of 1460 B: the prevalent initial congestion window.
DEFAULT_INIT_WINDOW_BYTES = 15_000

#: TCP handshake plus TLS handshake for the first connection of a load.
HANDSHAKE_RTTS = 2


def transfer_rtts(data_bytes: int, init_window: int = DEFAULT_INIT_WINDOW_BYTES) -> int:
    """Eq. 4: slow-start round trips to move ``data_bytes``.

    Transfers that fit in the initial window still cost one round trip.
    """
    if data_bytes < 0:
        raise ValueError("negative transfer size")
    if init_window <= 0:
        raise ValueError("initial window must be positive")
    if data_bytes == 0:
        return 0
    return max(1, math.ceil(math.log2(data_bytes / init_window)) if data_bytes > init_window else 1)


def connection_rtts(
    data_bytes: int,
    init_window: int = DEFAULT_INIT_WINDOW_BYTES,
    include_handshakes: bool = False,
) -> int:
    """Round trips for one connection, optionally with TCP+TLS setup."""
    rtts = transfer_rtts(data_bytes, init_window)
    if include_handshakes and rtts > 0:
        rtts += HANDSHAKE_RTTS
    return rtts
