"""Web substrate: TCP slow-start model and page-load RTT accounting."""

from .page import ConnectionTrace, PageLoadTrace, PageSpec, build_page_corpus, load_page
from .pageload import RttEstimate, estimate_rtts_per_page_load, page_load_rtts
from .tcp import DEFAULT_INIT_WINDOW_BYTES, HANDSHAKE_RTTS, connection_rtts, transfer_rtts

__all__ = [
    "ConnectionTrace",
    "PageLoadTrace",
    "PageSpec",
    "build_page_corpus",
    "load_page",
    "RttEstimate",
    "estimate_rtts_per_page_load",
    "page_load_rtts",
    "DEFAULT_INIT_WINDOW_BYTES",
    "HANDSHAKE_RTTS",
    "connection_rtts",
    "transfer_rtts",
]
