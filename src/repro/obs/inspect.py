"""Trace analysis: slowest spans, exclusive-time aggregates, cache effectiveness.

Pure functions over the span records :func:`~repro.obs.trace.load_trace`
returns; :func:`render_trace` formats the whole analysis as the text the
``repro inspect TRACE.jsonl`` subcommand prints.
"""

from __future__ import annotations

from collections import defaultdict

__all__ = [
    "trace_wall_s",
    "top_spans",
    "aggregate_by_name",
    "cache_effectiveness",
    "render_trace",
]


def _roots(records: list[dict]) -> list[dict]:
    """Spans with no parent in the trace (normally exactly one)."""
    ids = {r.get("id") for r in records}
    return [r for r in records if r.get("parent") not in ids]


def trace_wall_s(records: list[dict]) -> float:
    """Total wall time: the summed duration of the trace's root spans.

    Because every child's duration is attributed to exactly one parent,
    summing ``self_s`` over all records telescopes to the same number.
    """
    return sum(float(r.get("dur_s", 0.0)) for r in _roots(records))


def top_spans(records: list[dict], n: int = 10) -> list[dict]:
    """The ``n`` slowest spans by total duration, slowest first."""
    return sorted(records, key=lambda r: float(r.get("dur_s", 0.0)), reverse=True)[:n]


def aggregate_by_name(records: list[dict]) -> list[dict]:
    """Per-span-name aggregates, sorted by total exclusive time.

    Each row: ``{"name", "count", "total_s", "self_s", "share"}`` where
    ``share`` is the name's fraction of total exclusive (= wall) time.
    """
    totals: dict[str, dict] = defaultdict(lambda: {"count": 0, "total_s": 0.0, "self_s": 0.0})
    for record in records:
        row = totals[record.get("name", "?")]
        row["count"] += 1
        row["total_s"] += float(record.get("dur_s", 0.0))
        row["self_s"] += float(record.get("self_s", 0.0))
    wall = sum(row["self_s"] for row in totals.values()) or 1.0
    rows = [
        {"name": name, **row, "share": row["self_s"] / wall}
        for name, row in totals.items()
    ]
    rows.sort(key=lambda row: row["self_s"], reverse=True)
    return rows


def cache_effectiveness(records: list[dict]) -> list[dict]:
    """Hit/miss economics per cached span kind (``stage``, ``experiment``).

    Each row: kind, hit/miss counts, mean wall per hit vs per miss, and
    bytes read (hits) / written (misses).
    """
    by_kind: dict[str, dict] = {}
    for record in records:
        attrs = record.get("attrs") or {}
        if "cache_hit" not in attrs:
            continue
        kind = attrs.get("kind", "other")
        row = by_kind.setdefault(
            kind,
            {
                "kind": kind,
                "hits": 0,
                "misses": 0,
                "hit_s": 0.0,
                "miss_s": 0.0,
                "read_bytes": 0,
                "written_bytes": 0,
            },
        )
        size = attrs.get("size_bytes") or 0
        if attrs["cache_hit"]:
            row["hits"] += 1
            row["hit_s"] += float(record.get("dur_s", 0.0))
            row["read_bytes"] += size
        else:
            row["misses"] += 1
            row["miss_s"] += float(record.get("dur_s", 0.0))
            row["written_bytes"] += size
    return sorted(by_kind.values(), key=lambda row: row["kind"])


def _fmt_bytes(size: float) -> str:
    if size >= 1_000_000:
        return f"{size / 1_000_000:.1f} MB"
    if size >= 1_000:
        return f"{size / 1_000:.1f} kB"
    return f"{int(size)} B"


def render_trace(records: list[dict], top: int = 10) -> str:
    """The full inspection report as printable text."""
    if not records:
        return "(empty trace)"
    pids = {r.get("pid") for r in records}
    wall = trace_wall_s(records)
    t0 = min(float(r.get("ts", 0.0)) for r in records)
    lines = [
        f"== trace: {len(records)} spans / {len(pids)} process"
        f"{'es' if len(pids) != 1 else ''} / wall {wall:.3f}s =="
    ]

    lines.append(f"-- top {min(top, len(records))} slowest spans --")
    lines.append(f"{'dur_s':>10} {'self_s':>10} {'+t_s':>8}  {'pid':>7}  name")
    for record in top_spans(records, top):
        lines.append(
            f"{float(record.get('dur_s', 0.0)):>10.3f} "
            f"{float(record.get('self_s', 0.0)):>10.3f} "
            f"{float(record.get('ts', t0)) - t0:>8.3f}  "
            f"{record.get('pid', '?'):>7}  {record.get('name', '?')}"
        )

    lines.append("-- exclusive time by span name --")
    lines.append(f"{'count':>6} {'self_s':>10} {'share':>7}  name")
    for row in aggregate_by_name(records):
        lines.append(
            f"{row['count']:>6} {row['self_s']:>10.3f} {row['share']:>6.1%}  {row['name']}"
        )

    effectiveness = cache_effectiveness(records)
    if effectiveness:
        lines.append("-- cache effectiveness --")
        for row in effectiveness:
            total = row["hits"] + row["misses"]
            rate = row["hits"] / total if total else 0.0
            hit_mean = row["hit_s"] / row["hits"] if row["hits"] else 0.0
            miss_mean = row["miss_s"] / row["misses"] if row["misses"] else 0.0
            lines.append(
                f"{row['kind']}: {row['hits']} hits / {row['misses']} misses "
                f"({rate:.1%}); mean {hit_mean:.3f}s per hit vs {miss_mean:.3f}s per miss; "
                f"{_fmt_bytes(row['read_bytes'])} read, "
                f"{_fmt_bytes(row['written_bytes'])} written"
            )
    return "\n".join(lines)
