"""Trace analysis: slowest spans, exclusive-time aggregates, cache effectiveness.

Pure functions over the span records :func:`~repro.obs.trace.load_trace`
returns; :func:`render_trace` formats the whole analysis as the text the
``repro inspect TRACE.jsonl`` subcommand prints.

``repro inspect`` also accepts the serve daemon's access-log JSONL
(``repro serve --access-log``): :func:`looks_like_access_log` sniffs the
record shape and :func:`render_access_log` reports slowest requests,
per-endpoint time aggregates, and phase breakdowns instead.
"""

from __future__ import annotations

from collections import defaultdict

__all__ = [
    "trace_wall_s",
    "top_spans",
    "aggregate_by_name",
    "cache_effectiveness",
    "render_trace",
    "looks_like_access_log",
    "aggregate_endpoints",
    "render_access_log",
]


def _roots(records: list[dict]) -> list[dict]:
    """Spans with no parent in the trace (normally exactly one)."""
    ids = {r.get("id") for r in records}
    return [r for r in records if r.get("parent") not in ids]


def trace_wall_s(records: list[dict]) -> float:
    """Total wall time: the summed duration of the trace's root spans.

    Because every child's duration is attributed to exactly one parent,
    summing ``self_s`` over all records telescopes to the same number.
    """
    return sum(float(r.get("dur_s", 0.0)) for r in _roots(records))


def top_spans(records: list[dict], n: int = 10) -> list[dict]:
    """The ``n`` slowest spans by total duration, slowest first."""
    return sorted(records, key=lambda r: float(r.get("dur_s", 0.0)), reverse=True)[:n]


def aggregate_by_name(records: list[dict]) -> list[dict]:
    """Per-span-name aggregates, sorted by total exclusive time.

    Each row: ``{"name", "count", "total_s", "self_s", "share"}`` where
    ``share`` is the name's fraction of total exclusive (= wall) time.
    """
    totals: dict[str, dict] = defaultdict(lambda: {"count": 0, "total_s": 0.0, "self_s": 0.0})
    for record in records:
        row = totals[record.get("name", "?")]
        row["count"] += 1
        row["total_s"] += float(record.get("dur_s", 0.0))
        row["self_s"] += float(record.get("self_s", 0.0))
    wall = sum(row["self_s"] for row in totals.values()) or 1.0
    rows = [
        {"name": name, **row, "share": row["self_s"] / wall}
        for name, row in totals.items()
    ]
    rows.sort(key=lambda row: row["self_s"], reverse=True)
    return rows


def cache_effectiveness(records: list[dict]) -> list[dict]:
    """Hit/miss economics per cached span kind (``stage``, ``experiment``).

    Each row: kind, hit/miss counts, mean wall per hit vs per miss, and
    bytes read (hits) / written (misses).
    """
    by_kind: dict[str, dict] = {}
    for record in records:
        attrs = record.get("attrs") or {}
        if "cache_hit" not in attrs:
            continue
        kind = attrs.get("kind", "other")
        row = by_kind.setdefault(
            kind,
            {
                "kind": kind,
                "hits": 0,
                "misses": 0,
                "hit_s": 0.0,
                "miss_s": 0.0,
                "read_bytes": 0,
                "written_bytes": 0,
            },
        )
        size = attrs.get("size_bytes") or 0
        if attrs["cache_hit"]:
            row["hits"] += 1
            row["hit_s"] += float(record.get("dur_s", 0.0))
            row["read_bytes"] += size
        else:
            row["misses"] += 1
            row["miss_s"] += float(record.get("dur_s", 0.0))
            row["written_bytes"] += size
    return sorted(by_kind.values(), key=lambda row: row["kind"])


def _fmt_bytes(size: float) -> str:
    if size >= 1_000_000:
        return f"{size / 1_000_000:.1f} MB"
    if size >= 1_000:
        return f"{size / 1_000:.1f} kB"
    return f"{int(size)} B"


def looks_like_access_log(records: list[dict]) -> bool:
    """True when the records are serve access-log lines, not span records.

    Span records carry ``dur_s``/``self_s``/``id``; access-log records
    carry ``status``/``dur_ms``/``trace_id``.  Sniffing the first record
    is enough — the two formats share no required keys.
    """
    if not records:
        return False
    first = records[0]
    return "status" in first and "dur_ms" in first and "dur_s" not in first


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    return sorted_values[max(0, min(len(sorted_values) - 1, int(len(sorted_values) * q) - 1))]


def aggregate_endpoints(records: list[dict]) -> list[dict]:
    """Per-endpoint request aggregates, sorted by total time.

    Each row: ``{"endpoint", "count", "errors", "total_s", "mean_ms",
    "p99_ms", "share", "phases"}`` — ``share`` is the endpoint's
    fraction of total request time (the serving analogue of a span
    name's exclusive-time share), and ``phases`` maps each recorded
    phase (parse/queue/compute/serialize) to its mean milliseconds.
    """
    rows: dict[str, dict] = {}
    for record in records:
        endpoint = record.get("endpoint", "?")
        row = rows.setdefault(
            endpoint,
            {"endpoint": endpoint, "count": 0, "errors": 0, "total_s": 0.0,
             "durs_ms": [], "phase_totals": defaultdict(float)},
        )
        dur_ms = float(record.get("dur_ms", 0.0))
        row["count"] += 1
        row["total_s"] += dur_ms / 1000.0
        row["durs_ms"].append(dur_ms)
        if int(record.get("status", 0)) >= 400:
            row["errors"] += 1
        for phase, value in (record.get("phases") or {}).items():
            row["phase_totals"][phase] += float(value)
    grand_total = sum(row["total_s"] for row in rows.values()) or 1.0
    out = []
    for row in rows.values():
        durs = sorted(row["durs_ms"])
        out.append({
            "endpoint": row["endpoint"],
            "count": row["count"],
            "errors": row["errors"],
            "total_s": row["total_s"],
            "mean_ms": sum(durs) / len(durs) if durs else 0.0,
            "p99_ms": _percentile(durs, 0.99),
            "share": row["total_s"] / grand_total,
            "phases": {
                phase: total / row["count"]
                for phase, total in sorted(row["phase_totals"].items())
            },
        })
    out.sort(key=lambda row: row["total_s"], reverse=True)
    return out


def render_access_log(records: list[dict], top: int = 10) -> str:
    """The access-log inspection report as printable text."""
    if not records:
        return "(empty access log)"
    t0 = min(float(r.get("ts", 0.0)) for r in records)
    t1 = max(float(r.get("ts", 0.0)) for r in records)
    errors = sum(1 for r in records if int(r.get("status", 0)) >= 400)
    lines = [
        f"== access log: {len(records)} requests / "
        f"{t1 - t0:.1f}s window / {errors} error(s) =="
    ]

    lines.append(f"-- top {min(top, len(records))} slowest requests --")
    lines.append(f"{'dur_ms':>10} {'status':>6}  {'trace_id':<20} request")
    slowest = sorted(records, key=lambda r: float(r.get("dur_ms", 0.0)), reverse=True)
    for record in slowest[:top]:
        lines.append(
            f"{float(record.get('dur_ms', 0.0)):>10.2f} "
            f"{record.get('status', '?'):>6}  "
            f"{str(record.get('trace_id', '?'))[:20]:<20} "
            f"{record.get('method', '?')} {record.get('path', '?')}"
        )

    lines.append("-- time by endpoint --")
    lines.append(
        f"{'count':>6} {'errors':>6} {'total_s':>9} {'mean_ms':>9} "
        f"{'p99_ms':>9} {'share':>7}  endpoint"
    )
    rows = aggregate_endpoints(records)
    for row in rows:
        lines.append(
            f"{row['count']:>6} {row['errors']:>6} {row['total_s']:>9.3f} "
            f"{row['mean_ms']:>9.2f} {row['p99_ms']:>9.2f} {row['share']:>6.1%}  "
            f"{row['endpoint']}"
        )

    phased = [row for row in rows if row["phases"]]
    if phased:
        lines.append("-- mean phase breakdown (ms) --")
        for row in phased:
            breakdown = "  ".join(
                f"{phase}={value:.2f}" for phase, value in row["phases"].items()
            )
            lines.append(f"{row['endpoint']}: {breakdown}")
    return "\n".join(lines)


def render_trace(records: list[dict], top: int = 10) -> str:
    """The full inspection report as printable text."""
    if not records:
        return "(empty trace)"
    pids = {r.get("pid") for r in records}
    wall = trace_wall_s(records)
    t0 = min(float(r.get("ts", 0.0)) for r in records)
    lines = [
        f"== trace: {len(records)} spans / {len(pids)} process"
        f"{'es' if len(pids) != 1 else ''} / wall {wall:.3f}s =="
    ]

    lines.append(f"-- top {min(top, len(records))} slowest spans --")
    lines.append(f"{'dur_s':>10} {'self_s':>10} {'+t_s':>8}  {'pid':>7}  name")
    for record in top_spans(records, top):
        lines.append(
            f"{float(record.get('dur_s', 0.0)):>10.3f} "
            f"{float(record.get('self_s', 0.0)):>10.3f} "
            f"{float(record.get('ts', t0)) - t0:>8.3f}  "
            f"{record.get('pid', '?'):>7}  {record.get('name', '?')}"
        )

    lines.append("-- exclusive time by span name --")
    lines.append(f"{'count':>6} {'self_s':>10} {'share':>7}  name")
    for row in aggregate_by_name(records):
        lines.append(
            f"{row['count']:>6} {row['self_s']:>10.3f} {row['share']:>6.1%}  {row['name']}"
        )

    effectiveness = cache_effectiveness(records)
    if effectiveness:
        lines.append("-- cache effectiveness --")
        for row in effectiveness:
            total = row["hits"] + row["misses"]
            rate = row["hits"] / total if total else 0.0
            hit_mean = row["hit_s"] / row["hits"] if row["hits"] else 0.0
            miss_mean = row["miss_s"] / row["misses"] if row["misses"] else 0.0
            lines.append(
                f"{row['kind']}: {row['hits']} hits / {row['misses']} misses "
                f"({rate:.1%}); mean {hit_mean:.3f}s per hit vs {miss_mean:.3f}s per miss; "
                f"{_fmt_bytes(row['read_bytes'])} read, "
                f"{_fmt_bytes(row['written_bytes'])} written"
            )
    return "\n".join(lines)
