"""``repro.obs`` — hierarchical span tracing, metrics, and logging.

The observability layer the rest of the package instruments against:

* :mod:`repro.obs.trace` — contextvar-scoped :class:`Span` frames with
  exclusive-time accounting, fork-safe per-process JSONL shards, and a
  merge step that folds a parallel run into one ordered trace.  Timing
  is always on (the engine's ``RunReport`` is derived from these
  frames); record emission happens only when tracing is enabled, so a
  disabled tracer costs two clock reads per span.
* :mod:`repro.obs.metrics` — a process-global registry of counters,
  gauges, and histograms with a stable JSON snapshot (schema-checked in
  CI) and a Prometheus-style text exposition.  Workers ship snapshot
  deltas back to the engine so parallel totals match serial ones.
* :mod:`repro.obs.log` — the stdlib-``logging`` ``repro.*`` tree behind
  the CLI's ``-v`` flag.
* :mod:`repro.obs.inspect` — trace analysis (slowest spans, per-name
  exclusive-time aggregates, cache effectiveness) for ``repro inspect``,
  plus access-log aggregation for the serve daemon's request records.
* :mod:`repro.obs.bench` — the ``repro bench`` perf-trajectory suite
  (imported lazily, never re-exported here: its benchmark bodies reach
  back into the wider package, so eager import would break leafness).

This package is a leaf: it imports nothing from the rest of ``repro``,
so any layer — geo, bgp, anycast, engine, cli — may instrument freely
without import cycles.

Quickstart::

    from repro.obs import trace, metrics

    with trace.capture("run.jsonl", name="my-analysis"):
        with trace.span("phase.load", rows=len(rows)):
            ...
    metrics.counter("rows.total").inc(len(rows))
    print(metrics.to_text())
"""

from .log import ROOT_LOGGER, JsonLineFormatter, configure_logging, get_logger
from .metrics import (
    DEFAULT_BUCKETS,
    LATENCY_BUCKETS_MS,
    SNAPSHOT_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics,
    rss_peak_bytes,
    sample_process_stats,
)
from .trace import (
    Span,
    TimerStack,
    Tracer,
    current_trace_id,
    load_trace,
    merge_shards,
    set_trace_id,
    trace,
)

__all__ = [
    "ROOT_LOGGER",
    "JsonLineFormatter",
    "configure_logging",
    "get_logger",
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS_MS",
    "SNAPSHOT_SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics",
    "rss_peak_bytes",
    "sample_process_stats",
    "Span",
    "TimerStack",
    "Tracer",
    "current_trace_id",
    "load_trace",
    "merge_shards",
    "set_trace_id",
    "trace",
]
