"""Hierarchical span tracing: contextvar-scoped, fork-safe, near-free when off.

A :class:`Span` is one timed frame of work (``with trace.span("bgp.propagate",
origin=64512):``).  Spans nest through a :mod:`contextvars` variable, so every
span knows its parent without any explicit threading — including across
threads, where each thread sees its own stack.  Two numbers come out of every
frame:

* ``dur_s`` — total wall time of the frame;
* ``self_s`` — *exclusive* wall time: the total minus whatever child frames
  accounted for.  Summing ``self_s`` over a whole trace telescopes exactly to
  the root span's duration, which is what lets
  :class:`~repro.engine.report.RunReport` tables add up to true wall time.

Design rules:

* **Always-on timing, opt-in emission.**  Spans measure whether or not a sink
  is configured — the engine derives its ``RunReport`` from these frames even
  with tracing off — but a JSONL record is written only when the tracer is
  enabled, so the disabled cost is two clock reads, one contextvar swap, and
  one short string per span.  All instrumentation sites are coarse (stages,
  experiments, whole-population batches), never per-client.
* **Fork safety by sharding.**  Each process appends to its own
  ``spans-<pid>.jsonl`` shard inside the tracer's shard directory: a forked
  pool worker notices the pid change on its first emit and reopens its own
  shard, so no two processes ever interleave writes in one file.  The engine
  merges the shards into one time-ordered trace when the run joins (see
  :func:`merge_shards` / :meth:`Tracer.capture`).
* **Cross-process parentage.**  A worker re-roots its spans under the engine's
  run span via :meth:`Tracer.adopt`; the wall time a worker's top-level span
  covers is attributed back to the real run span by the engine when the pool
  joins, so exclusive times keep telescoping even though the worker's parent
  object lives in another process.  (A span whose children ran concurrently
  can therefore report *negative* ``self_s`` — that is overlap, not error.)
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path

__all__ = [
    "Span",
    "Tracer",
    "trace",
    "merge_shards",
    "load_trace",
    "set_trace_id",
    "current_trace_id",
    "TimerStack",
]

#: The innermost open span of the current context (thread / task / process).
_CURRENT: ContextVar["Span | _RemoteParent | None"] = ContextVar(
    "repro_obs_current_span", default=None
)

#: The id of the request (or other unit of work) the current context is
#: serving — what ties spans, structured log lines, and access-log
#: records together.  Set by the serve daemon per request; read by the
#: ``--log-json`` formatter and anyone emitting correlated telemetry.
_TRACE_ID: ContextVar[str | None] = ContextVar("repro_obs_trace_id", default=None)


def set_trace_id(trace_id: str | None):
    """Bind a trace/request id to the current context; returns a reset token."""
    return _TRACE_ID.set(trace_id)


def current_trace_id() -> str | None:
    """The trace/request id bound to the current context, if any."""
    return _TRACE_ID.get()

_SHARD_PREFIX = "spans-"


class _RemoteParent:
    """Stands in for a span that lives in another process.

    Pool workers re-root under the engine's run span: records they emit
    carry the remote span id as ``parent``, while the child time they
    accumulate locally is discarded — the engine attributes each worker
    task's wall time to the real run span when the pool joins, so no
    duration is counted twice.
    """

    __slots__ = ("span_id", "child_s")

    def __init__(self, span_id: str | None):
        self.span_id = span_id
        self.child_s = 0.0


class Span:
    """One timed frame of work; use as a context manager.

    Attributes set via :meth:`set` (or the ``span(...)`` kwargs) land in
    the record's ``attrs`` object.  ``dur_s``/``self_s`` are valid after
    ``__exit__``.
    """

    __slots__ = (
        "name",
        "attrs",
        "span_id",
        "parent",
        "start_ts",
        "dur_s",
        "child_s",
        "_start_pc",
        "_token",
        "_tracer",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = ""
        self.parent: Span | _RemoteParent | None = None
        self.start_ts = 0.0
        self.dur_s = 0.0
        self.child_s = 0.0
        self._start_pc = 0.0
        self._token = None

    @property
    def self_s(self) -> float:
        """Exclusive duration: total minus the time children accounted for.

        Negative when children ran concurrently in worker processes (their
        wall time overlaps this frame's); summing ``self_s`` over a whole
        trace still telescopes exactly to the root span's duration.
        """
        return self.dur_s - self.child_s

    @property
    def parent_id(self) -> str | None:
        return self.parent.span_id if self.parent is not None else None

    def set(self, **attrs) -> "Span":
        """Attach attributes to the span (merged into any passed at open)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        tracer = self._tracer
        tracer._seq += 1
        self.span_id = f"{os.getpid()}-{tracer._seq}"
        self.parent = _CURRENT.get()
        self._token = _CURRENT.set(self)
        self.start_ts = time.time()
        self._start_pc = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.dur_s = time.perf_counter() - self._start_pc
        _CURRENT.reset(self._token)
        parent = self.parent
        if parent is not None:
            parent.child_s += self.dur_s
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        if self._tracer._enabled:
            self._tracer._emit(self)
        return False


class Tracer:
    """Process-wide span factory and per-process JSONL shard writer."""

    def __init__(self):
        self._enabled = False
        self._shard_dir: Path | None = None
        self._handle = None
        self._handle_pid: int | None = None
        self._seq = 0

    @property
    def enabled(self) -> bool:
        return self._enabled

    @property
    def shard_dir(self) -> Path | None:
        """Where this tracer's per-process shards go (``None`` when off)."""
        return self._shard_dir

    def span(self, name: str, **attrs) -> Span:
        """Open a frame: ``with trace.span("stage.internet", scale="small"):``."""
        return Span(self, name, attrs)

    def current_span_id(self) -> str | None:
        """Id of the innermost open span in this context, if any."""
        current = _CURRENT.get()
        return current.span_id if current is not None else None

    # -- lifecycle ---------------------------------------------------------
    def start(self, shard_dir: str | os.PathLike) -> None:
        """Begin emitting: each process shards into ``shard_dir``."""
        self._shard_dir = Path(shard_dir)
        self._shard_dir.mkdir(parents=True, exist_ok=True)
        self._enabled = True

    def stop(self) -> None:
        """Stop emitting and close this process's shard."""
        self._close()
        self._enabled = False
        self._shard_dir = None

    def adopt(self, shard_dir: str | os.PathLike | None, parent_id: str | None) -> None:
        """Configure a pool worker: shard into ``shard_dir``, re-rooted under ``parent_id``.

        Correct under both start methods: with ``fork`` the tracer state is
        inherited and only the shard handle needs replacing (the pid check
        in :meth:`_emit` would do that anyway); with ``spawn`` the state is
        rebuilt from scratch.  Either way the worker's context is re-rooted
        so its spans carry the engine run span as their parent.
        """
        self._close()
        if shard_dir is None:
            self._enabled = False
            self._shard_dir = None
        else:
            self.start(shard_dir)
        _CURRENT.set(_RemoteParent(parent_id))

    def reroot(self, parent_id: str | None) -> None:
        """Re-root this context under a remote parent without touching shards.

        The cheap per-task sibling of :meth:`adopt`: a long-lived serving
        worker adopts its shard directory once (or inherits it across
        ``fork``) and then re-roots for every request it executes, so each
        task's spans carry that request's parent-side span as their
        parent.  Costs one contextvar set.
        """
        _CURRENT.set(_RemoteParent(parent_id))

    @contextmanager
    def capture(self, out_path: str | os.PathLike, name: str = "trace", **attrs):
        """Trace a block into one merged JSONL file at ``out_path``.

        Opens a root span around the block (so every record in the file has
        an ancestor and exclusive times telescope to total wall time),
        shards per process while the block runs, then merges the shards —
        ordered by start time — into ``out_path`` and removes them.
        """
        # Fail fast on an unwritable destination before hours of compute.
        with open(out_path, "w", encoding="utf-8"):
            pass
        shard_dir = tempfile.mkdtemp(prefix="repro-trace-")
        self.start(shard_dir)
        try:
            with self.span(name, **attrs):
                yield self
        finally:
            self.stop()
            try:
                merge_shards(shard_dir, out_path)
            finally:
                shutil.rmtree(shard_dir, ignore_errors=True)

    # -- emission ----------------------------------------------------------
    def _close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None
            self._handle_pid = None

    def _emit(self, span: Span) -> None:
        pid = os.getpid()
        handle = self._handle
        if handle is None or self._handle_pid != pid:
            # First emit in this process (or first after a fork): open a
            # shard of our own.  The handle a fork inherited belongs to the
            # parent's shard; closing our copy cannot disturb the parent.
            if self._shard_dir is None:
                return
            self._close()
            try:
                handle = open(
                    self._shard_dir / f"{_SHARD_PREFIX}{pid}.jsonl",
                    "a",
                    encoding="utf-8",
                    buffering=1,  # line-buffered: every record is durable at once
                )
            except OSError:
                self._enabled = False
                return
            self._handle = handle
            self._handle_pid = pid
        record = {
            "name": span.name,
            "id": span.span_id,
            "parent": span.parent_id,
            "pid": pid,
            "ts": span.start_ts,
            "dur_s": span.dur_s,
            "self_s": span.self_s,
            "attrs": span.attrs,
        }
        try:
            handle.write(json.dumps(record, separators=(",", ":"), default=str) + "\n")
        except (OSError, TypeError, ValueError):  # pragma: no cover - sink trouble
            pass


def _read_jsonl(path: str | os.PathLike) -> list[dict]:
    records = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # torn tail write from a killed process
    return records


def _order_key(record: dict) -> tuple:
    """Sort by start time; ties break by (pid, seq) so a parent that started
    in the same clock tick as its child still precedes it."""
    ts = record.get("ts") or 0.0
    try:
        pid_s, _, seq_s = str(record.get("id", "")).partition("-")
        return (float(ts), int(pid_s), int(seq_s))
    except (TypeError, ValueError):
        return (float(ts), 0, 0)


def merge_shards(
    shard_dir: str | os.PathLike, out_path: str | os.PathLike | None = None
) -> list[dict]:
    """Fold every per-process shard under ``shard_dir`` into one ordered trace.

    Returns the merged records (parents before children); when ``out_path``
    is given, also writes them there as JSONL, one record per line.
    """
    records: list[dict] = []
    for path in sorted(Path(shard_dir).glob(f"{_SHARD_PREFIX}*.jsonl")):
        records.extend(_read_jsonl(path))
    records.sort(key=_order_key)
    if out_path is not None:
        with open(out_path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, separators=(",", ":"), default=str) + "\n")
    return records


def load_trace(path: str | os.PathLike) -> list[dict]:
    """Read a merged trace JSONL file back into a list of span records."""
    return _read_jsonl(path)


class TimerStack:
    """Nested timing with exclusive (self) durations.

    Internal legacy helper: the engine's reports are now derived from
    :class:`Span` frames, which subsume this class (a span's ``self_s`` is
    exactly a frame's ``self_s`` here).  Kept for compatibility with code
    that imported it from ``repro.engine``; new code should use
    ``trace.span(...)``.
    """

    def __init__(self):
        self._child_time: list[float] = []

    @contextmanager
    def frame(self):
        started = time.perf_counter()
        self._child_time.append(0.0)
        timing = {"self_s": 0.0, "total_s": 0.0}
        try:
            yield timing
        finally:
            elapsed = time.perf_counter() - started
            children = self._child_time.pop()
            if self._child_time:
                self._child_time[-1] += elapsed
            timing["self_s"] = elapsed - children
            timing["total_s"] = elapsed


#: The process-wide tracer every instrumentation site goes through.
trace = Tracer()
