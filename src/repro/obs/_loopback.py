"""A minimal in-process asyncio server harness for benchmarking.

Runs any ``handle_client(reader, writer)`` coroutine host (the serve
daemon's ``App``) on an ephemeral loopback port inside a background
thread — without the CLI's signal handlers, which only install on the
main thread.  Used by :mod:`repro.obs.bench` to time the end-to-end
HTTP path; keeps no ``repro`` imports so :mod:`repro.obs` stays a leaf.
"""

from __future__ import annotations

import asyncio
import threading

__all__ = ["LoopbackDaemon"]


def _quiet_cancellations(loop, context) -> None:
    if isinstance(context.get("exception"), asyncio.CancelledError):
        return
    loop.default_exception_handler(context)


class LoopbackDaemon:
    """Context manager: serve ``app.handle_client`` on 127.0.0.1:<ephemeral>.

    ``__enter__`` returns the bound port once the socket is listening;
    ``__exit__`` stops the loop and joins the thread.
    """

    def __init__(self, app, host: str = "127.0.0.1"):
        self._app = app
        self._host = host
        self._port: int | None = None
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._error: BaseException | None = None

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        # Benchmark teardown races client EOF against loop shutdown;
        # cancelled connection handlers are expected noise here, not
        # errors worth a traceback on the bench output.
        self._loop.set_exception_handler(_quiet_cancellations)
        self._stop = asyncio.Event()
        server = await asyncio.start_server(self._app.handle_client, self._host, 0)
        self._port = server.sockets[0].getsockname()[1]
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            # One breath so handlers of already-closed clients finish
            # cleanly instead of being cancelled mid-teardown.
            await asyncio.sleep(0.05)

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # pragma: no cover - surfaced in __enter__
            self._error = error
            self._ready.set()

    def __enter__(self) -> int:
        self._thread = threading.Thread(target=self._run, name="loopback-daemon", daemon=True)
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._error is not None:
            raise RuntimeError("loopback daemon failed to start") from self._error
        if self._port is None:
            raise RuntimeError("loopback daemon did not bind within 30s")
        return self._port

    def __exit__(self, *exc) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30)
