"""A tiny JSON-Schema-subset validator (stdlib only) for the obs file formats.

Supports exactly what the checked-in schemas use — ``type`` (including
union lists), ``required``, ``properties``, ``additionalProperties``
(boolean or schema), ``items`` — so CI can enforce
``docs/trace.schema.json``, ``docs/metrics.schema.json``,
``docs/accesslog.schema.json``, and ``docs/bench.schema.json`` without
a ``jsonschema`` dependency.  ``scripts/validate_obs.py`` is the CLI
wrapper.
"""

from __future__ import annotations

import json
import os

__all__ = [
    "validate",
    "validate_trace_file",
    "validate_metrics_file",
    "validate_jsonl_file",
    "validate_access_log_file",
    "validate_bench_file",
]

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


def _type_ok(value, name: str) -> bool:
    if isinstance(value, bool) and name in ("integer", "number"):
        return False  # bool is an int subclass; JSON keeps them distinct
    return isinstance(value, _TYPES[name])


def validate(instance, schema: dict, path: str = "$") -> list[str]:
    """Check ``instance`` against ``schema``; returns human-readable violations."""
    errors: list[str] = []
    stype = schema.get("type")
    if stype is not None:
        names = stype if isinstance(stype, list) else [stype]
        if not any(_type_ok(instance, name) for name in names):
            return [f"{path}: expected {'/'.join(names)}, got {type(instance).__name__}"]
    if isinstance(instance, dict):
        for key in schema.get("required", ()):
            if key not in instance:
                errors.append(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        additional = schema.get("additionalProperties", True)
        for key, value in instance.items():
            if key in properties:
                errors.extend(validate(value, properties[key], f"{path}.{key}"))
            elif additional is False:
                errors.append(f"{path}: unexpected key {key!r}")
            elif isinstance(additional, dict):
                errors.extend(validate(value, additional, f"{path}.{key}"))
    if isinstance(instance, list):
        items = schema.get("items")
        if isinstance(items, dict):
            for i, value in enumerate(instance):
                errors.extend(validate(value, items, f"{path}[{i}]"))
    return errors


def validate_jsonl_file(
    path: str | os.PathLike, schema: dict, *, kind: str = "JSONL"
) -> list[str]:
    """Validate a JSONL file line by line (every line one record)."""
    errors: list[str] = []
    with open(path, encoding="utf-8") as handle:
        n_records = 0
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                errors.append(f"line {lineno}: blank line in JSONL")
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                errors.append(f"line {lineno}: not JSON ({error})")
                continue
            n_records += 1
            errors.extend(f"line {lineno}: {e}" for e in validate(record, schema))
    if n_records == 0:
        errors.append(f"{kind} file holds no records")
    return errors


def validate_trace_file(path: str | os.PathLike, schema: dict) -> list[str]:
    """Validate a trace JSONL file line by line (every line one span record)."""
    return validate_jsonl_file(path, schema, kind="trace")


def validate_access_log_file(path: str | os.PathLike, schema: dict) -> list[str]:
    """Validate a serve access-log JSONL file (every line one request record)."""
    return validate_jsonl_file(path, schema, kind="access-log")


def validate_bench_file(path: str | os.PathLike, schema: dict) -> list[str]:
    """Validate a ``BENCH_*.json`` perf-trajectory document."""
    try:
        with open(path, encoding="utf-8") as handle:
            instance = json.load(handle)
    except json.JSONDecodeError as error:
        return [f"not JSON: {error}"]
    return validate(instance, schema)


def validate_metrics_file(path: str | os.PathLike, schema: dict) -> list[str]:
    """Validate a ``--metrics`` JSON dump against the metrics schema."""
    try:
        with open(path, encoding="utf-8") as handle:
            instance = json.load(handle)
    except json.JSONDecodeError as error:
        return [f"not JSON: {error}"]
    return validate(instance, schema)
