"""Perf-trajectory benchmarking: ``repro bench`` and ``BENCH_*.json``.

The pytest suite under ``benchmarks/`` asserts *floors* (regressions
fail CI); this module records *trajectories*: a small, named suite of
the repository's hot paths — kernel batch resolution, single-query
latency, the warm-cache engine path, a live loopback HTTP resolve
through the serve daemon, and the disabled-span overhead — timed
in-process and written as one schema-versioned ``BENCH_<code>.json``
document (machine info, per-benchmark latency/throughput stats, cache
hit rates).  Committing one document per code version is what turns
"is it getting faster?" from folklore into a diffable series.

Cross-machine comparability: wall times move with the host, so every
document carries a ``calibration_s`` — the time of a fixed CPU+memory
probe measured in the same run.  :func:`compare` scales the
baseline's timings by the calibration ratio before applying the
regression threshold, so a slower CI box does not read as a regression
(and a faster one does not hide a real one).

Like the rest of :mod:`repro.obs`, this module keeps the package a
leaf: every import from the wider ``repro`` tree happens lazily inside
the benchmark bodies.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import sys
import time
from pathlib import Path

from .metrics import metrics

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BENCH_SCHEMA",
    "SUITE",
    "DEFAULT_THRESHOLD",
    "machine_info",
    "calibrate",
    "run_suite",
    "save_document",
    "default_output_name",
    "find_baseline",
    "compare",
    "render_document",
    "render_regressions",
]

#: Bumped whenever the BENCH document layout changes incompatibly.
BENCH_SCHEMA_VERSION = 1

#: Fail threshold for :func:`compare`: a benchmark is a regression when
#: its min time exceeds the calibration-adjusted baseline by this
#: fraction (0.30 = 30%, the CI gate).
DEFAULT_THRESHOLD = 0.30

#: The document contract.  ``docs/bench.schema.json`` is the checked-in
#: copy of exactly this object; tests assert the two never drift.
BENCH_SCHEMA: dict = {
    "type": "object",
    "required": [
        "schema", "code_version", "created_ts", "scale", "seed", "quick",
        "machine", "calibration_s", "benchmarks", "cache",
    ],
    "additionalProperties": False,
    "properties": {
        "schema": {"type": "integer"},
        "code_version": {"type": "string"},
        "created_ts": {"type": "number"},
        "scale": {"type": "string"},
        "seed": {"type": "integer"},
        "quick": {"type": "boolean"},
        "machine": {
            "type": "object",
            "required": ["python", "implementation", "platform", "machine", "cpu_count"],
            "additionalProperties": False,
            "properties": {
                "python": {"type": "string"},
                "implementation": {"type": "string"},
                "platform": {"type": "string"},
                "machine": {"type": "string"},
                "cpu_count": {"type": ["integer", "null"]},
            },
        },
        "calibration_s": {"type": "number"},
        "benchmarks": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "rounds", "units_per_round", "stats", "throughput", "extra"],
                "additionalProperties": False,
                "properties": {
                    "name": {"type": "string"},
                    "rounds": {"type": "integer"},
                    "units_per_round": {"type": "number"},
                    "stats": {
                        "type": "object",
                        "required": ["min_s", "mean_s", "max_s"],
                        "additionalProperties": False,
                        "properties": {
                            "min_s": {"type": "number"},
                            "mean_s": {"type": "number"},
                            "max_s": {"type": "number"},
                        },
                    },
                    "throughput": {"type": ["number", "null"]},
                    "extra": {"type": "object"},
                },
            },
        },
        "cache": {
            "type": "object",
            "required": ["stage_builds", "stage_hits", "hit_rate"],
            "additionalProperties": False,
            "properties": {
                "stage_builds": {"type": "integer"},
                "stage_hits": {"type": "integer"},
                "hit_rate": {"type": "number"},
            },
        },
    },
}


def machine_info() -> dict:
    """Where this document was produced (schema-pinned keys only)."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def calibrate(repeats: int = 3) -> float:
    """Seconds for a fixed CPU+memory probe (best of ``repeats`` each).

    Two components, summed: sha256 over 4 MB in 64 KiB chunks (scalar
    compute, cache-resident) and a full ``count`` scan over a 32 MB
    buffer (memory bandwidth).  The suite's hot paths — numpy gathers,
    Python object traffic, socket I/O — are bandwidth-sensitive in a
    way a cache-resident hash loop cannot see, so the probe exercises
    both; :func:`compare` uses the ratio of two calibrations to
    translate timings between machines (or between windows of a busy
    virtualized host).
    """
    chunk = b"\xa5" * 65536
    buffer = b"\xa5" * (32 << 20)
    best_cpu = best_mem = float("inf")
    for _ in range(repeats):
        digest = hashlib.sha256()
        start = time.perf_counter()
        for _ in range(64):
            digest.update(chunk)
        best_cpu = min(best_cpu, time.perf_counter() - start)
        start = time.perf_counter()
        buffer.count(0)
        best_mem = min(best_mem, time.perf_counter() - start)
    return best_cpu + best_mem


def _time_rounds(fn, rounds: int) -> list[float]:
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return times


class _Context:
    """Shared state the benchmark bodies draw on (built once per run)."""

    def __init__(self, scenario, quick: bool):
        self.scenario = scenario
        self.quick = quick
        self.rounds = 5 if quick else 7
        self._service = None

    @property
    def deployment(self):
        letters = self.scenario.letters_2018
        return letters[sorted(letters)[0]]

    @property
    def population(self):
        locations = list(self.scenario.user_base)
        return (
            [loc.asn for loc in locations],
            [loc.region_id for loc in locations],
        )

    @property
    def service(self):
        """A warm :class:`AnycastService` (built once, reused across benches)."""
        if self._service is None:
            from ..serve.service import AnycastService

            self._service = AnycastService(self.scenario)
        return self._service


def _bench_resolve_many(ctx: _Context) -> dict:
    """Full-population batch resolution through one warm kernel.

    Each round repeats the batch resolve 64× so the round body stays
    well above scheduler jitter even at the small scale, where a single
    full-population resolve is sub-millisecond.
    """
    asns, regions = ctx.population
    deployment = ctx.deployment
    reps = 64
    deployment.resolve_many(asns[:1], regions[:1])  # warm tables out of the timing

    def run():
        for _ in range(reps):
            deployment.resolve_many(asns, regions)

    times = _time_rounds(run, ctx.rounds)
    return {
        "times": times,
        "units": len(asns) * reps,
        "extra": {"rows": len(asns), "reps": reps},
    }


def _bench_resolve_single(ctx: _Context) -> dict:
    """Per-query latency: a loop of 1-row resolves (the serve hot path)."""
    asns, regions = ctx.population
    deployment = ctx.deployment
    n = 150 if ctx.quick else 200
    deployment.resolve_many(asns[:1], regions[:1])

    def run():
        for i in range(n):
            j = i % len(asns)
            deployment.resolve_many([asns[j]], [regions[j]])

    times = _time_rounds(run, ctx.rounds)
    return {"times": times, "units": n, "extra": {"resolves": n}}


def _bench_engine_cached(ctx: _Context) -> dict:
    """Warm-cache experiment runs through the engine (200 per round).

    A single warm-cache run is ~0.1ms, far below timer/scheduler noise;
    repeating it keeps the round body long enough for a stable minimum.
    """
    from ..experiments import run_experiment

    reps = 200
    run_experiment("fig02a", ctx.scenario)  # guarantee the cache is warm

    def run():
        for _ in range(reps):
            run_experiment("fig02a", ctx.scenario)

    times = _time_rounds(run, ctx.rounds)
    return {"times": times, "units": reps, "extra": {"experiment": "fig02a", "reps": reps}}


def _bench_span_disabled(ctx: _Context) -> dict:
    """Disabled-tracer span cost (the always-on instrumentation price)."""
    from .trace import Tracer

    tracer = Tracer()
    n = 20_000 if ctx.quick else 50_000

    def spin():
        for _ in range(n):
            with tracer.span("bench.micro"):
                pass

    times = _time_rounds(spin, ctx.rounds)
    return {"times": times, "units": n, "extra": {"spans": n}}


def _bench_serve_http(ctx: _Context) -> dict:
    """Loopback keep-alive ``POST /v1/resolve`` through the real daemon stack.

    Boots the asyncio server in-process (thread offload, no forked
    pool) on an ephemeral port, then times sequential 64-pair resolves
    over one keep-alive connection — the end-to-end serving path:
    parse, route, offload, kernel, serialize, write.
    """
    import http.client

    from ..serve.lifecycle import ServeConfig
    from ..serve.server import App
    from ._loopback import LoopbackDaemon

    asns, regions = ctx.population
    pairs = [[asns[i % len(asns)], regions[i % len(regions)]] for i in range(64)]
    deployment_name = sorted(ctx.service.deployments)[0]
    body = json.dumps({"deployment": deployment_name, "pairs": pairs}).encode()
    n = 40 if ctx.quick else 80

    app = App(ctx.service, ServeConfig(workers=0))
    with LoopbackDaemon(app) as port:
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=120)

        def run():
            for _ in range(n):
                connection.request(
                    "POST", "/v1/resolve", body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                payload = response.read()
                if response.status != 200:  # pragma: no cover - bench wiring bug
                    raise RuntimeError(f"HTTP {response.status}: {payload[:200]!r}")

        run()  # warm: connection established, endpoint counters registered
        times = _time_rounds(run, ctx.rounds)
        connection.close()
    return {
        "times": times,
        "units": n,
        "extra": {"pairs_per_request": len(pairs), "deployment": deployment_name},
    }


def _bench_serve_overload(ctx: _Context) -> dict:
    """Shed latency: how fast the daemon says 429 at the admission gate.

    Installs an always-firing ``queue_flood`` fault so every request is
    shed at admission, then times keep-alive GETs through the loopback
    daemon.  Under a real overload the daemon answers this path far
    more often than any other — shedding must stay orders of magnitude
    cheaper than serving, or admission control just moves the collapse.
    """
    import http.client

    from .. import faults
    from ..serve.lifecycle import ServeConfig
    from ..serve.server import App
    from ._loopback import LoopbackDaemon

    n = 150 if ctx.quick else 300
    app = App(ctx.service, ServeConfig(workers=0))
    previous = faults.active_plan()
    faults.install(faults.FaultPlan(specs=(faults.FaultSpec(kind="queue_flood"),)))
    try:
        with LoopbackDaemon(app) as port:
            connection = http.client.HTTPConnection("127.0.0.1", port, timeout=120)

            def run():
                for _ in range(n):
                    connection.request("GET", "/v1/inflation/2018-K")
                    response = connection.getresponse()
                    payload = response.read()
                    if response.status != 429:  # pragma: no cover - wiring bug
                        raise RuntimeError(f"HTTP {response.status}: {payload[:200]!r}")
                    if not response.getheader("Retry-After"):  # pragma: no cover
                        raise RuntimeError("shed answer lacks Retry-After")

            run()  # warm: connection + shed counters registered
            times = _time_rounds(run, ctx.rounds)
            connection.close()
    finally:
        faults.install(previous)
    return {"times": times, "units": n, "extra": {"status": 429, "sheds": n}}


def _whatif_subject(ctx: _Context):
    """K-root and a planned single-site withdrawal — the canonical what-if.

    Both what-if benches share this so the delta and rebuild paths are
    timed over the *same* mutation; planning stays outside the timed
    region (it is common to both paths and microseconds anyway).
    """
    from ..anycast.delta import plan_withdraw

    deployment = ctx.scenario.letters_2018["K"]
    return deployment, plan_withdraw(deployment, [0])


def _bench_whatif_delta(ctx: _Context) -> dict:
    """Single-site withdrawal via the delta path (repropagate + patch).

    The numerator of the incremental-what-if speedup claim: scoped BGP
    re-propagation plus an in-place ``FlowKernel.apply_delta``.  Each
    round repeats the mutation so the body stays above timer jitter at
    the small scale.
    """
    from ..anycast.delta import DeltaKernel

    deployment, mutation = _whatif_subject(ctx)
    reps = 48 if ctx.quick else 64
    DeltaKernel(deployment).apply(mutation)  # warm the kernel tables

    def run():
        for _ in range(reps):
            DeltaKernel(deployment).apply(mutation)

    times = _time_rounds(run, ctx.rounds)
    return {
        "times": times,
        "units": reps,
        "extra": {"deployment": "2018-K", "removed_sites": 1, "reps": reps},
    }


def _bench_whatif_rebuild(ctx: _Context) -> dict:
    """The same withdrawal via full rebuild (cold propagate + new kernel).

    The denominator of the speedup claim — and the oracle the delta
    path is equivalence-tested against.  ``benchmarks/`` asserts
    delta ≥ 20× faster than this at the paper scale.
    """
    from ..anycast.delta import rebuild

    deployment, mutation = _whatif_subject(ctx)
    reps = 8
    rebuild(deployment, mutation).kernel  # warm: lazy kernel built here

    def run():
        for _ in range(reps):
            rebuild(deployment, mutation).resolve_many([1], [0])

    times = _time_rounds(run, ctx.rounds)
    return {
        "times": times,
        "units": reps,
        "extra": {"deployment": "2018-K", "removed_sites": 1, "reps": reps},
    }


#: The trajectory suite: name → benchmark body.  Order is report order.
SUITE: dict = {
    "kernel.resolve_many": _bench_resolve_many,
    "kernel.resolve_single": _bench_resolve_single,
    "kernel.whatif_delta": _bench_whatif_delta,
    "kernel.whatif_rebuild": _bench_whatif_rebuild,
    "engine.cached_run": _bench_engine_cached,
    "obs.span_disabled": _bench_span_disabled,
    "serve.http_resolve": _bench_serve_http,
    "serve.overload": _bench_serve_overload,
}


def _cache_section() -> dict:
    snapshot = metrics.snapshot()["counters"]
    builds = int(snapshot.get("engine.stages.built.total", 0))
    hits = int(snapshot.get("engine.stages.cache_hits.total", 0))
    return {
        "stage_builds": builds,
        "stage_hits": hits,
        "hit_rate": hits / builds if builds else 0.0,
    }


def run_suite(
    scale: str = "small",
    seed: int = 0,
    *,
    quick: bool = True,
    select: str | None = None,
    cache_dir: str | None = None,
    no_cache: bool = False,
    scenario=None,
) -> dict:
    """Run the trajectory suite; returns the BENCH document (unsaved).

    ``select`` is a substring filter over benchmark names.  ``scenario``
    injects a pre-built scenario (tests); by default one is built
    through the artifact cache like any CLI run.
    """
    from ..engine import ArtifactCache, code_version

    if scenario is None:
        from ..experiments import Scenario

        cache = ArtifactCache(root=cache_dir, enabled=not no_cache)
        scenario = Scenario(scale=scale, seed=seed, cache=cache)
    ctx = _Context(scenario, quick)
    chosen = {
        name: fn for name, fn in SUITE.items()
        if select is None or select in name
    }
    if not chosen:
        raise ValueError(
            f"--select {select!r} matches no benchmark; known: {', '.join(SUITE)}"
        )
    records = []
    for name, fn in chosen.items():
        outcome = fn(ctx)
        times = outcome["times"]
        units = float(outcome["units"])
        min_s = min(times)
        records.append({
            "name": name,
            "rounds": len(times),
            "units_per_round": units,
            "stats": {
                "min_s": min_s,
                "mean_s": sum(times) / len(times),
                "max_s": max(times),
            },
            "throughput": units / min_s if min_s > 0 else None,
            "extra": outcome.get("extra", {}),
        })
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "code_version": code_version(),
        "created_ts": time.time(),
        "scale": scenario.params.scale,
        "seed": scenario.params.seed,
        "quick": quick,
        "machine": machine_info(),
        "calibration_s": calibrate(),
        "benchmarks": records,
        "cache": _cache_section(),
    }


def default_output_name(document: dict) -> str:
    """``BENCH_<code12>.json`` — one file per producing tree."""
    return f"BENCH_{document['code_version'][:12]}.json"


def save_document(document: dict, path: str | os.PathLike) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def find_baseline(explicit: str | None = None) -> Path | None:
    """Resolve the baseline document: ``--baseline`` wins, else the
    checked-in ``benchmarks/BENCH_baseline.json`` of a repo checkout."""
    if explicit is not None:
        return Path(explicit)
    checked_in = Path(__file__).resolve().parents[3] / "benchmarks" / "BENCH_baseline.json"
    return checked_in if checked_in.is_file() else None


def compare(current: dict, baseline: dict, threshold: float = DEFAULT_THRESHOLD) -> list[dict]:
    """Regressions of ``current`` against ``baseline``.

    A benchmark regresses when its min time exceeds the baseline's —
    scaled by the two documents' calibration ratio — by more than
    ``threshold``.  Benchmarks present in only one document are skipped
    (suites may grow); comparing across scales is refused.
    """
    if current.get("scale") != baseline.get("scale"):
        raise ValueError(
            f"cannot compare scale={current.get('scale')!r} against a "
            f"scale={baseline.get('scale')!r} baseline"
        )
    base_cal = float(baseline.get("calibration_s") or 0.0)
    cur_cal = float(current.get("calibration_s") or 0.0)
    scale_factor = (cur_cal / base_cal) if base_cal > 0 and cur_cal > 0 else 1.0
    baseline_by_name = {b["name"]: b for b in baseline.get("benchmarks", [])}
    regressions = []
    for bench in current.get("benchmarks", []):
        base = baseline_by_name.get(bench["name"])
        if base is None:
            continue
        adjusted = float(base["stats"]["min_s"]) * scale_factor
        current_s = float(bench["stats"]["min_s"])
        if adjusted > 0 and current_s > adjusted * (1.0 + threshold):
            regressions.append({
                "name": bench["name"],
                "current_s": current_s,
                "baseline_s": float(base["stats"]["min_s"]),
                "adjusted_baseline_s": adjusted,
                "ratio": current_s / adjusted,
            })
    return regressions


def render_document(document: dict) -> str:
    """The BENCH document as a printable table."""
    machine = document["machine"]
    lines = [
        f"== bench: scale={document['scale']} seed={document['seed']} "
        f"{'quick' if document['quick'] else 'full'} / "
        f"code {document['code_version'][:12]} / "
        f"calibration {document['calibration_s'] * 1000:.2f}ms ==",
        f"   {machine['implementation']} {machine['python']} on "
        f"{machine['machine']} ({machine['cpu_count']} cpus)",
        f"{'min_s':>10} {'mean_s':>10} {'throughput':>14}  name",
    ]
    for bench in document["benchmarks"]:
        throughput = bench["throughput"]
        rendered = f"{throughput:,.0f}/s" if throughput is not None else "-"
        lines.append(
            f"{bench['stats']['min_s']:>10.4f} {bench['stats']['mean_s']:>10.4f} "
            f"{rendered:>14}  {bench['name']}"
        )
    cache = document["cache"]
    lines.append(
        f"cache: {cache['stage_hits']}/{cache['stage_builds']} stage hits "
        f"({cache['hit_rate']:.1%})"
    )
    return "\n".join(lines)


def render_regressions(regressions: list[dict], threshold: float) -> str:
    if not regressions:
        return f"no regressions beyond {threshold:.0%} vs baseline"
    lines = [f"{len(regressions)} regression(s) beyond {threshold:.0%} vs baseline:"]
    for entry in regressions:
        lines.append(
            f"  {entry['name']}: {entry['current_s']:.4f}s vs adjusted baseline "
            f"{entry['adjusted_baseline_s']:.4f}s "
            f"({entry['ratio']:.2f}x, raw baseline {entry['baseline_s']:.4f}s)"
        )
    return "\n".join(lines)
