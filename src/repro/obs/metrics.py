"""Process-wide metrics registry: counters, gauges, histograms.

Collection is always on — a counter bump is two attribute loads and an
add, cheap enough that no instrumentation site needs gating — and the
registry is a process-global singleton (``from repro.obs import
metrics``).  Pool workers ship per-task :meth:`snapshot` deltas back to
the parent, which :meth:`merge`\\ s them, so a ``workers=4`` run reports
the same totals as the serial run.

Merge semantics: counters and histogram counts/sums **add**; gauges take
the **max** (every gauge in this codebase is a peak — name gauges
accordingly); histogram ``min``/``max`` take the min/max.

Two dump formats share one :meth:`snapshot` layout (stable keys, schema
versioned, validated in CI against ``docs/metrics.schema.json``):
:meth:`to_json`/:meth:`dump` for machines and :meth:`to_text` for a
Prometheus-style plain-text exposition.
"""

from __future__ import annotations

import json
import os
import sys
from bisect import bisect_left

try:  # POSIX only; Windows degrades to "no RSS numbers".
    import resource
except ImportError:  # pragma: no cover - non-POSIX
    resource = None  # type: ignore[assignment]

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics",
    "rss_peak_bytes",
    "sample_process_stats",
    "SNAPSHOT_SCHEMA_VERSION",
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS_MS",
]

#: Bumped whenever the snapshot layout changes; checked by the CI validator.
SNAPSHOT_SCHEMA_VERSION = 1

#: Decade buckets: sizes in this codebase (batch rows, artifact bytes)
#: span seven orders of magnitude, so powers of ten read naturally.
DEFAULT_BUCKETS = (
    1.0,
    10.0,
    100.0,
    1_000.0,
    10_000.0,
    100_000.0,
    1_000_000.0,
    10_000_000.0,
)

#: Request-latency buckets (milliseconds) for the serving path: sub-ms
#: cache hits through multi-second what-if re-propagations.
LATENCY_BUCKETS_MS = (
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1_000.0,
    2_500.0,
    5_000.0,
    10_000.0,
)


class Counter:
    """Monotonic count (events, bytes).  ``inc`` only."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: int | float = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount


class Gauge:
    """A level.  Merged across processes by max, so use it for peaks."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def set_max(self, value: float) -> None:
        if value > self.value:
            self.value = float(value)


class Histogram:
    """Fixed-bucket distribution with count/sum/min/max.

    ``buckets`` are upper bounds (``value <= bound``); one overflow
    bucket (``+Inf``) catches the rest.  Bucket counts in snapshots are
    per-bucket (non-cumulative); the text exposition renders them
    cumulatively, Prometheus-style.
    """

    __slots__ = ("name", "help", "buckets", "counts", "count", "total", "vmin", "vmax")

    def __init__(self, name: str, help: str = "", buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(float(b) for b in buckets))
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin: float | None = None
        self.vmax: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value
        self.counts[bisect_left(self.buckets, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


def _bucket_key(bound: float) -> str:
    return "+Inf" if bound == float("inf") else str(bound)


class MetricsRegistry:
    """Get-or-create registry of named metrics (one per process)."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- registration ------------------------------------------------------
    def counter(self, name: str, help: str = "") -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name, help)
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name, help)
        return metric

    def histogram(
        self, name: str, help: str = "", buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name, help, buckets)
        return metric

    def reset(self) -> None:
        """Drop every metric (the CLI resets per invocation)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- snapshots ---------------------------------------------------------
    def snapshot(self) -> dict:
        """Plain-data view with stable keys (the dump/merge interchange)."""
        return {
            "schema": SNAPSHOT_SCHEMA_VERSION,
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: {
                    "count": h.count,
                    "sum": h.total,
                    "min": h.vmin,
                    "max": h.vmax,
                    "buckets": {
                        _bucket_key(bound): n
                        for bound, n in zip((*h.buckets, float("inf")), h.counts)
                    },
                }
                for name, h in sorted(self._histograms.items())
            },
        }

    @staticmethod
    def diff(after: dict, before: dict) -> dict:
        """``after - before`` for two snapshots of the *same* registry.

        Counters and histogram counts/sums subtract exactly; gauges and
        histogram extrema carry ``after``'s cumulative values, which stays
        correct under the max/min merge rules.
        """
        counters = {
            name: value - before.get("counters", {}).get(name, 0)
            for name, value in after.get("counters", {}).items()
        }
        histograms = {}
        for name, h_after in after.get("histograms", {}).items():
            h_before = before.get("histograms", {}).get(name)
            if h_before is None:
                histograms[name] = h_after
                continue
            histograms[name] = {
                "count": h_after["count"] - h_before["count"],
                "sum": h_after["sum"] - h_before["sum"],
                "min": h_after["min"],
                "max": h_after["max"],
                "buckets": {
                    key: n - h_before["buckets"].get(key, 0)
                    for key, n in h_after["buckets"].items()
                },
            }
        return {
            "schema": after.get("schema", SNAPSHOT_SCHEMA_VERSION),
            "counters": counters,
            "gauges": dict(after.get("gauges", {})),
            "histograms": histograms,
        }

    def merge(self, snapshot: dict) -> None:
        """Fold a snapshot (typically a worker's delta) into this registry."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set_max(value)
        for name, data in snapshot.get("histograms", {}).items():
            bounds = tuple(
                sorted(float(key) for key in data.get("buckets", {}) if key != "+Inf")
            )
            histogram = self.histogram(name, buckets=bounds or DEFAULT_BUCKETS)
            if histogram.buckets != bounds and bounds:
                continue  # incompatible boundaries: refuse rather than mis-bin
            histogram.count += data.get("count", 0)
            histogram.total += data.get("sum", 0.0)
            for vname, pick in (("vmin", min), ("vmax", max)):
                incoming = data.get("min" if vname == "vmin" else "max")
                if incoming is not None:
                    current = getattr(histogram, vname)
                    setattr(
                        histogram,
                        vname,
                        incoming if current is None else pick(current, incoming),
                    )
            for i, bound in enumerate((*histogram.buckets, float("inf"))):
                histogram.counts[i] += data.get("buckets", {}).get(_bucket_key(bound), 0)

    # -- dumps -------------------------------------------------------------
    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def dump(self, path: str | os.PathLike) -> None:
        """Write the snapshot as JSON (the CLI's ``--metrics FILE.json``)."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    def to_text(self) -> str:
        """Prometheus-style plain-text exposition of every metric."""
        lines: list[str] = []

        def expo(name: str) -> str:
            return "repro_" + name.replace(".", "_").replace("-", "_")

        for name, c in sorted(self._counters.items()):
            if c.help:
                lines.append(f"# HELP {expo(name)} {c.help}")
            lines.append(f"# TYPE {expo(name)} counter")
            lines.append(f"{expo(name)} {c.value}")
        for name, g in sorted(self._gauges.items()):
            if g.help:
                lines.append(f"# HELP {expo(name)} {g.help}")
            lines.append(f"# TYPE {expo(name)} gauge")
            lines.append(f"{expo(name)} {g.value}")
        for name, h in sorted(self._histograms.items()):
            if h.help:
                lines.append(f"# HELP {expo(name)} {h.help}")
            lines.append(f"# TYPE {expo(name)} histogram")
            cumulative = 0
            for bound, n in zip((*h.buckets, float("inf")), h.counts):
                cumulative += n
                lines.append(f'{expo(name)}_bucket{{le="{_bucket_key(bound)}"}} {cumulative}')
            lines.append(f"{expo(name)}_sum {h.total}")
            lines.append(f"{expo(name)}_count {h.count}")
        return "\n".join(lines) + ("\n" if lines else "")


def _procfs_rss_bytes() -> int | None:
    """Current resident set size from ``/proc/self/statm`` (Linux only)."""
    try:
        with open("/proc/self/statm", encoding="ascii") as handle:
            resident_pages = int(handle.read().split()[1])
        return resident_pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        return None


def _open_fd_count() -> int | None:
    """How many file descriptors this process holds open."""
    for fd_dir in ("/proc/self/fd", "/dev/fd"):
        try:
            # Minus one: listing the directory itself holds a descriptor.
            return max(0, len(os.listdir(fd_dir)) - 1)
        except OSError:
            continue
    return None


def sample_process_stats() -> dict:
    """One instantaneous resource sample of this process.

    Returns ``{"rss_bytes", "rss_is_peak", "open_fds"}`` — procfs where
    available (Linux: current RSS, live fd count), degrading gracefully
    elsewhere: on non-Linux POSIX the RSS falls back to the
    :func:`rss_peak_bytes` high-water mark (flagged via ``rss_is_peak``)
    and fd counting uses ``/dev/fd``; anything unobtainable is ``None``.
    """
    rss = _procfs_rss_bytes()
    rss_is_peak = False
    if rss is None:
        rss = rss_peak_bytes()
        rss_is_peak = rss is not None
    return {
        "rss_bytes": rss,
        "rss_is_peak": rss_is_peak,
        "open_fds": _open_fd_count(),
    }


def rss_peak_bytes() -> int | None:
    """This process's peak resident set size, in bytes (``None`` off-POSIX)."""
    if resource is None:  # pragma: no cover - non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux but bytes on macOS.
    return int(peak) if sys.platform == "darwin" else int(peak) * 1024


#: The process-wide registry every instrumentation site goes through.
metrics = MetricsRegistry()
