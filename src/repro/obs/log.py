"""Stdlib-``logging`` wiring for the ``repro`` logger tree.

Every module logs through ``get_logger("<subsystem>")`` →
``logging.getLogger("repro.<subsystem>")``.  The ``repro`` root carries a
:class:`~logging.NullHandler` so library users see nothing unless they
configure logging themselves; the CLI's ``-v``/``--verbose`` flag calls
:func:`configure_logging` to attach a stderr handler at DEBUG.

``--log-json`` switches the handler to one JSON object per line —
``{"ts", "level", "logger", "msg"}`` plus ``trace_id`` whenever the
emitting context is serving a request (see
:func:`repro.obs.trace.current_trace_id`) — so daemon logs can be
joined against access-log records and trace spans by id.
"""

from __future__ import annotations

import json
import logging
import sys

from .trace import current_trace_id

__all__ = ["ROOT_LOGGER", "get_logger", "configure_logging", "JsonLineFormatter"]

ROOT_LOGGER = "repro"

#: Marks handlers we attached, so reconfiguration replaces rather than stacks.
_HANDLER_FLAG = "_repro_obs_handler"

logging.getLogger(ROOT_LOGGER).addHandler(logging.NullHandler())


def get_logger(name: str = "") -> logging.Logger:
    """The ``repro.<name>`` logger (the ``repro`` root when no name)."""
    return logging.getLogger(f"{ROOT_LOGGER}.{name}" if name else ROOT_LOGGER)


class JsonLineFormatter(logging.Formatter):
    """One JSON object per record: ts, level, logger, msg [, trace_id, exc]."""

    def format(self, record: logging.LogRecord) -> str:
        entry = {
            "ts": record.created,
            "level": record.levelname,
            "logger": record.name,
            "msg": record.getMessage(),
        }
        trace_id = current_trace_id()
        if trace_id is not None:
            entry["trace_id"] = trace_id
        if record.exc_info:
            entry["exc"] = self.formatException(record.exc_info)
        return json.dumps(entry, separators=(",", ":"), default=str)


def configure_logging(
    verbose: int = 0, stream=None, *, json_lines: bool = False
) -> logging.Logger:
    """Attach one stderr handler to the ``repro`` root logger.

    ``verbose >= 1`` (the CLI's ``-v``) logs at DEBUG; ``0`` keeps the
    tree at WARNING.  ``json_lines`` (the CLI's ``--log-json``) swaps
    the human formatter for :class:`JsonLineFormatter`.  Idempotent: a
    previous handler attached by this function is replaced, never
    stacked, so repeated CLI invocations in one process do not multiply
    output.
    """
    logger = logging.getLogger(ROOT_LOGGER)
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_FLAG, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    if json_lines:
        handler.setFormatter(JsonLineFormatter())
    else:
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s", datefmt="%H:%M:%S")
        )
    setattr(handler, _HANDLER_FLAG, True)
    logger.addHandler(handler)
    logger.setLevel(logging.DEBUG if verbose >= 1 else logging.WARNING)
    return logger
