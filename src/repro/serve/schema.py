"""The versioned response envelope every public JSON payload rides in.

One envelope shape serves two transports: the ``/v1`` HTTP endpoints of
:mod:`repro.serve` and the CLI's machine-readable outputs (``run
--json``).  Freezing it here — with a checked-in schema at
``docs/serve.schema.json`` that CI validates live responses against —
is what lets clients pin a ``schema_version`` instead of sniffing
payload shapes.

The envelope is deliberately tiny::

    {
      "schema_version": 1,          # bumped on any envelope/payload break
      "code_version": "abc123...",  # the producing tree (repro.engine.keys)
      "endpoint": "resolve",        # logical endpoint / CLI command
      "payload": {...}              # endpoint-specific object
    }

``payload`` shapes are documented per endpoint in docs/API.md; the
schema pins the envelope itself (all four keys required, nothing else
allowed), which is the compatibility contract.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..engine import code_version
from ..obs.schema import validate

__all__ = [
    "SERVE_SCHEMA_VERSION",
    "SERVE_SCHEMA",
    "envelope",
    "validate_envelope",
    "load_checked_in_schema",
]

#: Bumped whenever the envelope layout or any documented payload shape
#: changes incompatibly.  v1: initial public surface (PR 6); still v1
#: after the overload work — the error-payload extras below are
#: additive (new optional keys, old clients unaffected).
SERVE_SCHEMA_VERSION = 1

#: The envelope contract.  ``docs/serve.schema.json`` is the checked-in
#: copy of exactly this object; ``tests/test_serve.py`` asserts the two
#: never drift apart.  ``payload.error`` — present exactly when the
#: response status is an error — is pinned too: ``status``/``message``
#: always, plus the overload extras (``reason`` for shed 429/503s,
#: ``retry_after_s`` mirroring the ``Retry-After`` header,
#: ``deadline_ms``/``where`` on 504s).
SERVE_SCHEMA: dict = {
    "type": "object",
    "required": ["schema_version", "code_version", "endpoint", "payload"],
    "additionalProperties": False,
    "properties": {
        "schema_version": {"type": "integer"},
        "code_version": {"type": "string"},
        "endpoint": {"type": "string"},
        "payload": {
            "type": "object",
            "properties": {
                "error": {
                    "type": "object",
                    "required": ["status", "message"],
                    "additionalProperties": False,
                    "properties": {
                        "status": {"type": "integer"},
                        "message": {"type": "string"},
                        "reason": {"type": "string"},
                        "retry_after_s": {"type": "number"},
                        "deadline_ms": {"type": "number"},
                        "where": {"type": "string"},
                    },
                },
            },
        },
    },
}


def envelope(endpoint: str, payload: dict) -> dict:
    """Wrap one endpoint payload in the versioned envelope."""
    return {
        "schema_version": SERVE_SCHEMA_VERSION,
        "code_version": code_version(),
        "endpoint": endpoint,
        "payload": payload,
    }


def validate_envelope(instance) -> list[str]:
    """Check an envelope against :data:`SERVE_SCHEMA`; returns violations."""
    return validate(instance, SERVE_SCHEMA)


def load_checked_in_schema(root: str | Path | None = None) -> dict:
    """Load ``docs/serve.schema.json`` from a repo checkout.

    ``root`` defaults to the repository root above ``src/`` — this is a
    development/CI helper; installed deployments use the in-memory
    :data:`SERVE_SCHEMA`, which is the same object.
    """
    if root is None:
        root = Path(__file__).resolve().parents[3]
    path = Path(root) / "docs" / "serve.schema.json"
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)
