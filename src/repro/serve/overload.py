"""Overload control for ``repro serve``: admission, deadlines, breaker.

The daemon's value under load is decided by what it does at *overload*,
not at steady state (the FastRoute lesson): a burst must be shed with
well-formed answers, not queued into memory; a slow request must be cut
at its deadline, not allowed to wedge a worker; a crashing pool must
brown the service out to a degraded-but-answering mode, not black it
out.  Three pieces, all event-loop-confined (no locks):

* :class:`AdmissionQueue` — a bounded waiting room in front of the
  offload capacity.  ``max_inflight`` requests compute at once; up to
  ``max_queue`` more wait; everything beyond is **shed** immediately
  with a 429 and a ``Retry-After`` hint.  ``shed_policy`` picks the
  victim when the room is full: ``tail`` (default) rejects the
  newcomer, ``head`` displaces the oldest waiter — the request most
  likely to be past its client's patience anyway — in favour of the
  newcomer.  A drain sheds every waiter at once (503), so queued
  requests never sit out ``--grace`` holding slots.

* :class:`Deadline` — a per-request compute budget.  Every heavy
  endpoint has a default (:data:`DEFAULT_DEADLINE_MS`); clients lower
  (or raise, up to :data:`MAX_DEADLINE_MS`) it with an ``X-Deadline-Ms``
  header.  The budget covers queue wait *and* compute; expiry anywhere
  answers 504 inside the standard error envelope, and an expired pool
  task is abandoned — its worker killed and respawned — so the slot
  comes back instead of staying wedged.

* :class:`CircuitBreaker` — trips after ``threshold`` *consecutive*
  pool failures (worker crashes or deadline expiries).  While open,
  query endpoints fall back to the warm in-process kernels (thread
  path; what-if additionally drops to the rebuild oracle) — degraded
  capacity, but every request still gets a correct answer.  After
  ``cooldown_s`` the breaker goes half-open and lets ``probes``
  requests try the pool again: success closes it, failure re-opens.

Shed/expiry verdicts are :class:`ServiceError` subclasses carrying
``retry_after_s``/``details``, which the handler layer maps onto the
``Retry-After`` header and extra ``payload.error`` fields — see
``docs/API.md`` (*Overload & degradation*) for the wire contract.

Metrics: ``serve.shed.total`` + ``serve.shed.<reason>.total`` (reasons
``queue_full`` / ``displaced`` / ``drain``), ``serve.deadline.expired.total``
+ ``serve.deadline.<where>.expired.total`` (``queue`` / ``compute``),
``serve.breaker.transitions.total``, and the ``serve.breaker.state``
gauge (0 closed / 1 half-open / 2 open).
"""

from __future__ import annotations

import asyncio
import time
from collections import deque

from .. import faults
from ..obs import get_logger, metrics
from .service import ServiceError

__all__ = [
    "DEFAULT_DEADLINE_MS",
    "MAX_DEADLINE_MS",
    "DEADLINE_HEADER",
    "SHED_POLICIES",
    "SHED_RETRY_AFTER_S",
    "DRAIN_RETRY_AFTER_S",
    "BREAKER_STATE_VALUES",
    "ShedError",
    "DeadlineExpired",
    "count_expired",
    "WorkerLost",
    "Deadline",
    "AdmissionQueue",
    "CircuitBreaker",
]

_log = get_logger("serve.overload")

#: Per-endpoint default compute budgets, milliseconds.  Endpoints not
#: listed (healthz, metrics, the debug surface) answer on the event loop
#: and carry no deadline.  The budget covers queue wait + compute.
DEFAULT_DEADLINE_MS: dict = {
    "scenario": 5_000,
    "resolve": 10_000,
    "catchment": 15_000,
    "inflation": 15_000,
    "whatif": 30_000,
}

#: Hard ceiling on any client-requested deadline.
MAX_DEADLINE_MS = 120_000

#: The inbound header (lower-cased, as the parser stores headers).
DEADLINE_HEADER = "x-deadline-ms"

#: Who loses when the waiting room is full: ``tail`` sheds the arriving
#: request, ``head`` displaces the oldest waiter in its favour.
SHED_POLICIES = ("tail", "head")

#: ``Retry-After`` hints, seconds: a queue-full shed clears in about one
#: compute round; a draining daemon needs the client to go elsewhere.
SHED_RETRY_AFTER_S = 1.0
DRAIN_RETRY_AFTER_S = 5.0

#: ``serve.breaker.state`` gauge encoding.
BREAKER_STATE_VALUES = {"closed": 0, "half_open": 1, "open": 2}


class ShedError(ServiceError):
    """A request refused to protect the service (429 queue, 503 drain)."""

    def __init__(self, status: int, message: str, *, reason: str,
                 retry_after_s: float = SHED_RETRY_AFTER_S):
        super().__init__(status, message)
        self.reason = reason
        self.retry_after_s = retry_after_s
        self.details = {"reason": reason}


class DeadlineExpired(ServiceError):
    """A request that ran out of budget (504), queued or computing."""

    def __init__(self, budget_ms: float, *, where: str):
        super().__init__(
            504,
            f"deadline of {budget_ms:.0f}ms expired in {where}",
        )
        self.where = where
        self.details = {"deadline_ms": budget_ms, "where": where}


class WorkerLost(ServiceError):
    """Pool workers kept dying under this request (clean 503, not a 500)."""

    def __init__(self, message: str):
        super().__init__(503, message)
        self.reason = "worker_lost"
        self.retry_after_s = SHED_RETRY_AFTER_S
        self.details = {"reason": "worker_lost"}


def _count_shed(reason: str) -> None:
    metrics.counter("serve.shed.total").inc()
    metrics.counter(f"serve.shed.{reason}.total").inc()


def count_expired(where: str) -> None:
    """Count one deadline expiry (``where`` is ``queue`` or ``compute``)."""
    metrics.counter("serve.deadline.expired.total").inc()
    metrics.counter(f"serve.deadline.{where}.expired.total").inc()


class Deadline:
    """One request's compute budget, counting from arrival."""

    __slots__ = ("budget_ms", "_expires_at")

    def __init__(self, budget_ms: float, *, clock=time.monotonic):
        self.budget_ms = float(budget_ms)
        self._expires_at = clock() + self.budget_ms / 1000.0

    @classmethod
    def for_request(cls, endpoint: str, headers: dict,
                    default_ms: int | None = None) -> "Deadline | None":
        """The effective deadline: header, else per-endpoint default.

        ``default_ms`` overrides :data:`DEFAULT_DEADLINE_MS` (the
        ``--deadline-ms`` flag).  Endpoints with no default and no
        header run unbounded.  A malformed or out-of-range header is a
        400 — a client that asks for a budget gets told when the ask is
        nonsense, not silently clamped.
        """
        raw = headers.get(DEADLINE_HEADER, "").strip()
        if raw:
            try:
                requested = int(raw)
            except ValueError:
                raise ServiceError(
                    400, f"{DEADLINE_HEADER} must be an integer, got {raw!r}"
                ) from None
            if not 1 <= requested <= MAX_DEADLINE_MS:
                raise ServiceError(
                    400,
                    f"{DEADLINE_HEADER} must be in [1, {MAX_DEADLINE_MS}], "
                    f"got {requested}",
                )
            return cls(requested)
        budget = DEFAULT_DEADLINE_MS.get(endpoint) if default_ms is None else default_ms
        return cls(budget) if budget else None

    def remaining_s(self, *, clock=time.monotonic) -> float:
        return self._expires_at - clock()

    @property
    def expired(self) -> bool:
        return self.remaining_s() <= 0.0

    def expire_in(self, delay_s: float, *, clock=time.monotonic) -> None:
        """Pull the expiry forward (the ``deadline_expire`` fault hook)."""
        self._expires_at = min(self._expires_at, clock() + delay_s)


class AdmissionQueue:
    """Bounded admission in front of the offload capacity (loop-confined).

    ``max_inflight`` requests hold compute slots; up to ``max_queue``
    more wait in arrival order; the rest are shed.  :meth:`acquire`
    returns when a slot is granted and raises :class:`ShedError` /
    :class:`DeadlineExpired` otherwise — the caller must pair every
    successful acquire with exactly one :meth:`release`.
    """

    def __init__(self, max_inflight: int, max_queue: int,
                 policy: str = "tail"):
        if policy not in SHED_POLICIES:
            raise ValueError(
                f"shed policy must be one of {SHED_POLICIES}, got {policy!r}"
            )
        self.max_inflight = max(1, max_inflight)
        self.max_queue = max(0, max_queue)
        self.policy = policy
        self._inflight = 0
        self._waiters: deque[tuple[asyncio.Future, str]] = deque()

    @property
    def inflight(self) -> int:
        """Granted compute slots currently held."""
        return self._inflight

    @property
    def queued(self) -> int:
        """Requests waiting for a slot right now."""
        return len(self._waiters)

    async def acquire(self, endpoint: str, deadline: Deadline | None = None) -> None:
        """Wait for a compute slot; shed rather than queue unboundedly."""
        if faults.maybe_fire("queue_flood", endpoint) is not None:
            # The chaos hook: this request sees a full waiting room no
            # matter the actual load, so the shed path is drillable on
            # an idle daemon.
            _count_shed("queue_full")
            raise ShedError(
                429, "admission queue is full (injected flood); retry shortly",
                reason="queue_full",
            )
        if deadline is not None and deadline.expired:
            count_expired("queue")
            raise DeadlineExpired(deadline.budget_ms, where="queue")
        if self._inflight < self.max_inflight and not self._waiters:
            self._inflight += 1
            return
        if len(self._waiters) >= self.max_queue:
            if self.policy == "head" and self._waiters:
                victim, victim_endpoint = self._waiters.popleft()
                if not victim.done():
                    _count_shed("displaced")
                    victim.set_exception(ShedError(
                        429,
                        f"displaced from the admission queue by newer work "
                        f"(endpoint {victim_endpoint}); retry shortly",
                        reason="displaced",
                    ))
            else:
                _count_shed("queue_full")
                raise ShedError(
                    429,
                    f"admission queue is full ({self._inflight} in flight, "
                    f"{len(self._waiters)} queued); retry shortly",
                    reason="queue_full",
                )
        future = asyncio.get_running_loop().create_future()
        entry = (future, endpoint)
        self._waiters.append(entry)
        timeout = deadline.remaining_s() if deadline is not None else None
        try:
            await asyncio.wait_for(future, timeout=timeout)
        except (TimeoutError, asyncio.TimeoutError):
            try:
                self._waiters.remove(entry)
            except ValueError:
                pass
            if future.done() and not future.cancelled() and future.exception() is None:
                # Granted in the same tick the timer fired: hand the
                # slot straight back so accounting stays exact.
                self.release()
            count_expired("queue")
            raise DeadlineExpired(deadline.budget_ms, where="queue") from None

    def release(self) -> None:
        """Return a slot; the oldest live waiter is granted it in place."""
        self._inflight -= 1
        while self._waiters:
            future, _endpoint = self._waiters.popleft()
            if future.done():  # shed or timed out while queued
                continue
            self._inflight += 1
            future.set_result(None)
            break

    def shed_queued(self, *, reason: str = "drain",
                    retry_after_s: float = DRAIN_RETRY_AFTER_S) -> int:
        """Shed every waiter at once (503); returns how many were shed.

        The drain hook: requests queued when the drain starts must not
        sit out ``--grace`` holding connections — they get an immediate
        503 + ``Retry-After`` and the client goes elsewhere.
        """
        shed = 0
        while self._waiters:
            future, _endpoint = self._waiters.popleft()
            if future.done():
                continue
            _count_shed(reason)
            future.set_exception(ShedError(
                503, f"shed while {reason}ing; not accepting queued work",
                reason=reason, retry_after_s=retry_after_s,
            ))
            shed += 1
        if shed:
            _log.warning("shed %d queued request(s) (%s)", shed, reason)
        return shed


class CircuitBreaker:
    """Trips on consecutive pool failures; half-open probes re-close it.

    All transitions happen on the event loop.  :meth:`route` is asked
    before every pool round-trip and answers ``"pool"``, ``"probe"``
    (half-open trial slot), or ``"degraded"`` (stay in-process); every
    pool/probe round-trip must be answered with exactly one
    :meth:`record_success` / :meth:`record_failure` carrying the same
    route verdict.
    """

    CLOSED, HALF_OPEN, OPEN = "closed", "half_open", "open"

    def __init__(self, threshold: int = 5, cooldown_s: float = 30.0,
                 probes: int = 1, *, clock=time.monotonic):
        self.threshold = max(1, threshold)
        self.cooldown_s = max(0.0, cooldown_s)
        self.probes = max(1, probes)
        self._clock = clock
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_inflight = 0
        metrics.gauge("serve.breaker.state").set(BREAKER_STATE_VALUES[self.CLOSED])

    @property
    def state(self) -> str:
        return self._state

    def _transition(self, state: str, why: str) -> None:
        if state == self._state:
            return
        _log.warning("breaker %s -> %s (%s)", self._state, state, why)
        self._state = state
        metrics.counter("serve.breaker.transitions.total").inc()
        metrics.counter(f"serve.breaker.to_{state}.total").inc()
        metrics.gauge("serve.breaker.state").set(BREAKER_STATE_VALUES[state])

    def route(self) -> str:
        """Where the next request should compute: pool, probe, or degraded."""
        if self._state == self.OPEN:
            if self._clock() - self._opened_at < self.cooldown_s:
                return "degraded"
            self._probes_inflight = 0
            self._transition(self.HALF_OPEN, "cooldown elapsed")
        if self._state == self.HALF_OPEN:
            if self._probes_inflight >= self.probes:
                return "degraded"
            self._probes_inflight += 1
            return "probe"
        return "pool"

    def record_success(self, route: str) -> None:
        if route == "probe":
            self._probes_inflight = max(0, self._probes_inflight - 1)
            if self._state == self.HALF_OPEN:
                self._consecutive_failures = 0
                self._transition(self.CLOSED, "probe succeeded")
            return
        self._consecutive_failures = 0

    def record_failure(self, route: str, why: str = "pool failure") -> None:
        if route == "probe":
            self._probes_inflight = max(0, self._probes_inflight - 1)
            if self._state == self.HALF_OPEN:
                self._opened_at = self._clock()
                self._transition(self.OPEN, f"probe failed ({why})")
            return
        if self._state != self.CLOSED:
            return  # stale completion from before the trip
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.threshold:
            self._opened_at = self._clock()
            self._transition(
                self.OPEN,
                f"{self._consecutive_failures} consecutive failures ({why})",
            )
