"""Daemon lifecycle: config, in-flight accounting, graceful drain.

Shutdown reuses the run-engine's drain contract (PR 5): the first
SIGTERM/SIGINT stops the listener, in-flight requests get ``--grace``
seconds to finish, and the process exits 0 on a clean drain or
``EXIT_PREEMPTED`` (4) when grace expired with requests still in
flight — the same exit the batch CLI uses for a preempted run, so
orchestrators need one rule for both.  A second signal hard-kills,
also exactly like the batch path.
"""

from __future__ import annotations

import asyncio
import os
import signal as _signal
import time
from dataclasses import dataclass

from ..obs import get_logger, metrics

__all__ = [
    "EXIT_OK",
    "EXIT_IO",
    "EXIT_USAGE",
    "EXIT_PREEMPTED",
    "ServeConfig",
    "Lifecycle",
]

_log = get_logger("serve.lifecycle")

EXIT_OK = 0  #: clean drain
EXIT_IO = 1  #: bind or I/O failure at startup
EXIT_USAGE = 2  #: bad configuration
EXIT_PREEMPTED = 4  #: grace expired with requests still in flight


@dataclass(frozen=True, slots=True)
class ServeConfig:
    """Everything ``repro serve`` needs to boot one daemon."""

    scale: str = "small"
    seed: int = 0
    host: str = "127.0.0.1"
    port: int = 8459
    workers: int = 2  #: pool processes; 0 = in-process thread offload
    grace: float = 30.0  #: drain window for in-flight requests, seconds
    max_inflight: int = 32  #: concurrent offloaded queries (backpressure)
    max_queue: int = 64  #: admission-queue depth before requests are shed
    shed_policy: str = "tail"  #: queue-full victim: ``tail`` | ``head``
    breaker_threshold: int = 5  #: consecutive pool failures that open the breaker
    breaker_cooldown: float = 30.0  #: seconds open before a half-open probe
    deadline_ms: int | None = None  #: override every per-endpoint deadline default
    whatif_concurrency: int = 2  #: the what-if worker semaphore
    cache_dir: str | None = None
    no_cache: bool = False
    trace: str | None = None  #: merged span JSONL written at shutdown
    access_log: str | None = None  #: per-request JSONL, written live


class Lifecycle:
    """Drain state plus in-flight request accounting for one daemon."""

    def __init__(self, grace: float = 30.0):
        self.grace = grace
        self.started = time.monotonic()
        self.draining = False
        self.reason: str | None = None
        self._signals_seen = 0
        self._inflight = 0
        self._drain_requested = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._drain_callbacks: list = []

    # -- accounting --------------------------------------------------------
    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self.started

    @property
    def inflight(self) -> int:
        return self._inflight

    def request_started(self) -> None:
        self._inflight += 1
        self._idle.clear()
        metrics.gauge("serve.inflight.peak").set_max(self._inflight)

    def request_finished(self) -> None:
        self._inflight -= 1
        if self._inflight <= 0:
            self._idle.set()

    # -- drain -------------------------------------------------------------
    def on_drain(self, callback) -> None:
        """Register a callback to run once, when the drain begins.

        Callbacks run on the event loop (``request_drain`` is invoked
        from ``loop.add_signal_handler`` or request handlers, never a
        raw signal frame), so they may touch loop-confined state — the
        admission queue uses this to shed its waiters the moment a
        drain starts instead of letting them sit out ``--grace``.
        """
        self._drain_callbacks.append(callback)

    def request_drain(self, reason: str) -> None:
        """Sticky, idempotent: the first reason wins (signal handler safe)."""
        if not self.draining:
            self.draining = True
            self.reason = reason
            self._drain_requested.set()
            _log.warning("drain requested (%s): %d request(s) in flight",
                         reason, self._inflight)
            for callback in self._drain_callbacks:
                try:
                    callback()
                except Exception:  # noqa: BLE001 - a drain must never fail
                    _log.exception("drain callback failed")

    async def wait_for_drain(self) -> None:
        await self._drain_requested.wait()

    async def wait_idle(self) -> bool:
        """Give in-flight requests up to ``grace`` seconds; True = drained."""
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=max(0.0, self.grace))
            return True
        except TimeoutError:
            return False
        except asyncio.TimeoutError:  # pragma: no cover - Python < 3.11
            return False

    # -- signals -----------------------------------------------------------
    def install_signal_handlers(self, loop: asyncio.AbstractEventLoop) -> None:
        """First SIGTERM/SIGINT drains; the second hard-kills (128+sig)."""
        for signum in (_signal.SIGTERM, _signal.SIGINT):
            loop.add_signal_handler(signum, self._on_signal, signum)

    def _on_signal(self, signum: int) -> None:
        self._signals_seen += 1
        if self._signals_seen > 1:
            os._exit(128 + signum)  # second signal: hard kill, like the runner
        self.request_drain(f"signal {_signal.Signals(signum).name}")
