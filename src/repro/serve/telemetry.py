"""Per-request telemetry: access records, phase accounting, debug rings.

Every request the daemon serves produces one *access record* — a flat
JSON object (``ACCESS_LOG_SCHEMA``) tying together the request id, the
routed endpoint, the status, the total wall time, and a per-phase
breakdown (parse / queue / compute / serialize milliseconds).  The
record is:

* appended to the ``--access-log`` JSONL file (line-buffered, one
  object per line — the format ``repro inspect`` sniffs and aggregates);
* kept in two in-memory rings — most recent and slowest — that back
  ``GET /v1/debug/tracez``;
* the source of the ``serve.phase.<name>_ms`` histograms in
  ``/v1/metrics`` (recorded at phase time, not at flush time).

The in-flight record rides a :mod:`contextvars` variable so deep callees
(``App.execute``, the JSON serializer) can attribute phase time without
threading a handle through every signature — the same pattern the span
stack uses.
"""

from __future__ import annotations

import json
from collections import deque
from contextvars import ContextVar

from ..obs import metrics
from ..obs.metrics import LATENCY_BUCKETS_MS

__all__ = [
    "ACCESS_LOG_SCHEMA",
    "ACCESS_LOG_SCHEMA_VERSION",
    "RequestTelemetry",
    "begin_request",
    "end_request",
    "current_record",
    "add_phase",
]

#: Bumped whenever the access-record layout changes incompatibly.
ACCESS_LOG_SCHEMA_VERSION = 1

#: The access-record contract.  ``docs/accesslog.schema.json`` is the
#: checked-in copy of exactly this object; tests assert no drift.
ACCESS_LOG_SCHEMA: dict = {
    "type": "object",
    "required": [
        "schema", "ts", "trace_id", "method", "path", "endpoint",
        "status", "dur_ms", "bytes_in", "bytes_out", "phases",
    ],
    "additionalProperties": False,
    "properties": {
        "schema": {"type": "integer"},
        "ts": {"type": "number"},
        "trace_id": {"type": "string"},
        "method": {"type": "string"},
        "path": {"type": "string"},
        "endpoint": {"type": "string"},
        "status": {"type": "integer"},
        "dur_ms": {"type": "number"},
        "bytes_in": {"type": "integer"},
        "bytes_out": {"type": "integer"},
        "phases": {
            "type": "object",
            "additionalProperties": {"type": "number"},
        },
    },
}

#: The access record of the request the current context is serving.
_RECORD: ContextVar[dict | None] = ContextVar("repro_serve_record", default=None)


def begin_request(record: dict):
    """Bind ``record`` as the current request; returns a reset token."""
    return _RECORD.set(record)


def end_request(token) -> None:
    _RECORD.reset(token)


def current_record() -> dict | None:
    """The in-flight access record, if the current context is a request."""
    return _RECORD.get()


def add_phase(name: str, dur_s: float) -> None:
    """Attribute ``dur_s`` to phase ``name`` of the current request.

    Also observes the process-wide ``serve.phase.<name>_ms`` histogram,
    so the latency breakdown shows up in ``/v1/metrics`` even when no
    access log is configured.  Safe to call outside a request (the
    histogram still records; there is just no record to annotate).
    """
    ms = dur_s * 1000.0
    record = _RECORD.get()
    if record is not None:
        phases = record["phases"]
        phases[name] = phases.get(name, 0.0) + ms
    metrics.histogram(
        f"serve.phase.{name}_ms", buckets=LATENCY_BUCKETS_MS
    ).observe(ms)


class RequestTelemetry:
    """The daemon's request-record sink: rings for debug, JSONL for disk.

    One instance per :class:`~repro.serve.server.App`.  All methods run
    on the event loop (single-threaded), so plain containers suffice.
    """

    def __init__(self, access_log_path: str | None = None, *,
                 recent: int = 64, slowest: int = 16):
        self._recent: deque[dict] = deque(maxlen=recent)
        self._slowest: list[dict] = []
        self._slowest_cap = slowest
        self._path = access_log_path
        self._handle = None
        self.records_total = 0

    def open(self) -> None:
        """Open the access-log file (fail fast on an unwritable path)."""
        if self._path is not None and self._handle is None:
            self._handle = open(self._path, "w", encoding="utf-8", buffering=1)

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None

    def record(self, entry: dict) -> None:
        """Account one finished request: rings, counters, JSONL line."""
        self.records_total += 1
        self._recent.append(entry)
        self._slowest.append(entry)
        if len(self._slowest) > self._slowest_cap:
            self._slowest.sort(key=lambda r: r["dur_ms"], reverse=True)
            del self._slowest[self._slowest_cap:]
        if self._handle is not None:
            try:
                self._handle.write(
                    json.dumps(entry, separators=(",", ":"), default=str) + "\n"
                )
            except (OSError, TypeError, ValueError):  # pragma: no cover - sink trouble
                pass

    def recent(self) -> list[dict]:
        """Most recent requests, newest last."""
        return list(self._recent)

    def slowest(self) -> list[dict]:
        """Slowest requests seen so far, slowest first."""
        return sorted(self._slowest, key=lambda r: r["dur_ms"], reverse=True)[
            : self._slowest_cap
        ]
