"""``/v1`` endpoint handlers: routing, validation, instrumentation.

Every JSON response is wrapped in the :mod:`repro.serve.schema`
envelope; ``/v1/metrics`` alone speaks the Prometheus text exposition
(that format has no room for an envelope — it is the one documented
exemption).  Each request increments ``serve.requests.total`` and
``serve.<endpoint>.requests.total``, observes its wall time in
``serve.<endpoint>.latency_ms``, and counts its status class in
``serve.responses.<code>.total`` — all in the same
:mod:`repro.obs.metrics` registry the rest of the engine reports to,
which is exactly what ``/v1/metrics`` then exposes.
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import time
from dataclasses import dataclass, field

from ..obs import metrics, sample_process_stats, trace
from ..obs.metrics import LATENCY_BUCKETS_MS
from .overload import DRAIN_RETRY_AFTER_S, Deadline, DeadlineExpired, count_expired
from .schema import envelope
from .service import ServiceError
from .telemetry import add_phase

__all__ = ["Request", "Response", "handle", "ENDPOINTS"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: The public surface: (method, endpoint name).  Path routing below must
#: stay in lockstep with the docs/API.md endpoint table.
ENDPOINTS = (
    ("GET", "healthz"),
    ("GET", "scenario"),
    ("POST", "resolve"),
    ("GET", "catchment"),
    ("GET", "inflation"),
    ("POST", "whatif"),
    ("GET", "metrics"),
    ("GET", "debug.tracez"),
    ("GET", "debug.statusz"),
    ("GET", "debug.vars"),
)

#: Endpoints still answered while draining: health checks must keep
#: working so orchestrators see the drain, and the debug surface is most
#: useful exactly when a daemon is wedged mid-shutdown.
_DRAIN_EXEMPT = ("healthz", "debug.tracez", "debug.statusz", "debug.vars")


@dataclass(slots=True)
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    headers: dict = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict:
        if not self.body:
            raise ServiceError(400, "request body must be a JSON object")
        try:
            data = json.loads(self.body)
        except json.JSONDecodeError as error:
            raise ServiceError(400, f"request body is not JSON: {error}") from None
        if not isinstance(data, dict):
            raise ServiceError(400, "request body must be a JSON object")
        return data


@dataclass(slots=True)
class Response:
    """One response, ready for the wire."""

    status: int
    body: bytes
    content_type: str = "application/json"
    endpoint: str = "unrouted"  #: routed endpoint name (access-log field)
    headers: dict = field(default_factory=dict)  #: extra response headers

    @property
    def reason(self) -> str:
        return _REASONS.get(self.status, "Unknown")


def _json_response(status: int, endpoint: str, payload: dict) -> Response:
    with trace.span("serve.serialize") as span:
        body = json.dumps(envelope(endpoint, payload)).encode("utf-8")
    add_phase("serialize", span.dur_s)
    return Response(status=status, body=body, endpoint=endpoint)


def error_response(status: int, endpoint: str, message: str, *,
                   retry_after_s: float | None = None,
                   details: dict | None = None) -> Response:
    """The standard error envelope, with the overload-contract extras.

    ``details`` (``reason`` / ``deadline_ms`` / ``where``) land as extra
    keys of ``payload.error``; ``retry_after_s`` additionally sets a
    ``Retry-After`` header (whole seconds, rounded up — every shed
    answer tells the client when coming back is worth it).
    """
    error = {"status": status, "message": message}
    if details:
        error.update(details)
    if retry_after_s is not None:
        error["retry_after_s"] = retry_after_s
    response = _json_response(status, endpoint, {"error": error})
    if retry_after_s is not None:
        response.headers["Retry-After"] = str(max(1, math.ceil(retry_after_s)))
    return response


def _route(method: str, path: str) -> tuple[str, str | None]:
    """Resolve ``(endpoint, path_argument)``; raises ServiceError otherwise."""
    parts = [part for part in path.split("/") if part]
    if not parts or parts[0] != "v1":
        raise ServiceError(404, f"no such path {path!r}; the API lives under /v1/")
    if len(parts) == 2 and parts[1] in ("healthz", "scenario", "resolve", "whatif", "metrics"):
        endpoint, argument = parts[1], None
    elif len(parts) == 3 and parts[1] in ("catchment", "inflation"):
        endpoint, argument = parts[1], parts[2]
    elif len(parts) == 3 and parts[1] == "debug" and parts[2] in ("tracez", "statusz", "vars"):
        endpoint, argument = f"debug.{parts[2]}", None
    else:
        raise ServiceError(404, f"no such path {path!r}")
    expected = {"resolve": "POST", "whatif": "POST"}.get(endpoint, "GET")
    if method != expected:
        raise ServiceError(405, f"/v1/{endpoint} expects {expected}, got {method}")
    return endpoint, argument


async def handle(app, request: Request, *, reject_draining: bool = False) -> Response:
    """Route one request through the app; never raises.

    ``reject_draining`` is set by the server for requests that *arrived
    after* the drain began (keep-alive stragglers); requests already in
    flight when the drain started are answered normally — that is the
    grace window's whole point.
    """
    started = time.monotonic()
    endpoint = "unrouted"
    try:
        endpoint, argument = _route(request.method, request.path)
        if reject_draining and endpoint not in _DRAIN_EXEMPT:
            metrics.counter("serve.shed.total").inc()
            metrics.counter("serve.shed.drain.total").inc()
            response = error_response(
                503, endpoint,
                f"draining ({app.lifecycle.reason}); not accepting work",
                retry_after_s=DRAIN_RETRY_AFTER_S, details={"reason": "drain"},
            )
        else:
            # The compute budget starts here: per-endpoint default,
            # overridable (either way) by X-Deadline-Ms.
            deadline = Deadline.for_request(
                endpoint, request.headers, app.config.deadline_ms
            )
            response = await _dispatch(app, endpoint, argument, request, deadline)
    except ServiceError as error:
        response = error_response(
            error.status, endpoint, str(error),
            retry_after_s=getattr(error, "retry_after_s", None),
            details=getattr(error, "details", None),
        )
    except Exception as error:  # noqa: BLE001 - the daemon must not die per-request
        response = error_response(500, endpoint, f"{type(error).__name__}: {error}")
    metrics.counter("serve.requests.total").inc()
    metrics.counter(f"serve.{endpoint}.requests.total").inc()
    metrics.counter(f"serve.responses.{response.status}.total").inc()
    metrics.histogram(
        f"serve.{endpoint}.latency_ms", buckets=LATENCY_BUCKETS_MS
    ).observe((time.monotonic() - started) * 1000.0)
    return response


async def _dispatch(app, endpoint: str, argument: str | None, request: Request,
                    deadline: Deadline | None = None) -> Response:
    if endpoint == "healthz":
        lifecycle = app.lifecycle
        return _json_response(200, endpoint, {
            "status": "draining" if lifecycle.draining else "ok",
            "uptime_s": lifecycle.uptime_s,
            "inflight": lifecycle.inflight,
            "breaker": app.breaker.state,
            "scale": app.service.scenario.params.scale,
            "seed": app.service.scenario.params.seed,
            "workers": app.config.workers,
        })
    if endpoint == "metrics":
        with trace.span("serve.serialize") as span:
            body = metrics.to_text().encode("utf-8")
        add_phase("serialize", span.dur_s)
        return Response(
            status=200,
            body=body,
            content_type="text/plain; version=0.0.4",
            endpoint=endpoint,
        )
    if endpoint == "debug.tracez":
        telemetry = app.telemetry
        return _json_response(200, endpoint, {
            "records_total": telemetry.records_total,
            "recent": telemetry.recent(),
            "slowest": telemetry.slowest(),
        })
    if endpoint == "debug.statusz":
        lifecycle = app.lifecycle
        config = app.config
        return _json_response(200, endpoint, {
            "pid": os.getpid(),
            "uptime_s": lifecycle.uptime_s,
            "draining": lifecycle.draining,
            "drain_reason": lifecycle.reason,
            "inflight": lifecycle.inflight,
            "workers": config.workers,
            "max_inflight": config.max_inflight,
            "max_queue": config.max_queue,
            "shed_policy": config.shed_policy,
            "admission_inflight": app.admission.inflight,
            "admission_queued": app.admission.queued,
            "breaker": app.breaker.state,
            "breaker_threshold": config.breaker_threshold,
            "breaker_cooldown": config.breaker_cooldown,
            "grace": config.grace,
            "scale": app.service.scenario.params.scale,
            "seed": app.service.scenario.params.seed,
            "trace_enabled": trace.enabled,
            "access_log": config.access_log,
            "queue_depth": app.pool.queue_depth if app.pool is not None else 0,
        })
    if endpoint == "debug.vars":
        return _json_response(200, endpoint, {
            "process": sample_process_stats(),
            "metrics": metrics.snapshot(),
        })
    if endpoint == "scenario":
        return _json_response(200, endpoint, await app.execute("scenario", {}, deadline))
    if endpoint == "resolve":
        data = request.json()
        payload = await app.execute(
            "resolve",
            {"deployment": data.get("deployment"), "pairs": data.get("pairs")},
            deadline,
        )
        return _json_response(200, endpoint, payload)
    if endpoint in ("catchment", "inflation"):
        payload = await app.execute(endpoint, {"deployment": argument}, deadline)
        return _json_response(200, endpoint, payload)
    if endpoint == "whatif":
        data = request.json()
        await _acquire_within(app.whatif_semaphore, deadline)
        try:
            payload = await app.execute("whatif", {
                "deployment": data.get("deployment"),
                "remove_sites": data.get("remove_sites"),
                "add_regions": data.get("add_regions"),
            }, deadline)
        finally:
            app.whatif_semaphore.release()
        return _json_response(200, endpoint, payload)
    raise ServiceError(404, f"unrouted endpoint {endpoint!r}")  # pragma: no cover


async def _acquire_within(semaphore, deadline: Deadline | None) -> None:
    """Acquire the what-if semaphore inside the request's budget (504 past it)."""
    if deadline is None:
        await semaphore.acquire()
        return
    try:
        await asyncio.wait_for(semaphore.acquire(), deadline.remaining_s())
    except (TimeoutError, asyncio.TimeoutError):
        count_expired("queue")
        raise DeadlineExpired(deadline.budget_ms, where="queue") from None
