"""``repro.serve`` — the anycast-planning library as a long-running daemon.

``repro serve --scale small --port 8459`` loads one scenario, warms
every deployment's :class:`~repro.anycast.batch.FlowKernel`, and
answers resolve/catchment/inflation/what-if queries over versioned
``/v1`` HTTP endpoints (see docs/API.md, *Service API*).  Every JSON
response rides the :mod:`repro.serve.schema` envelope; concurrency
comes from a :class:`~repro.engine.pool.MonitoredPool` of forked
workers sharing the warm tables copy-on-write; SIGTERM drains with the
batch engine's grace/exit-4 contract.
"""

from .handlers import ENDPOINTS
from .lifecycle import (
    EXIT_IO,
    EXIT_OK,
    EXIT_PREEMPTED,
    EXIT_USAGE,
    Lifecycle,
    ServeConfig,
)
from .schema import SERVE_SCHEMA, SERVE_SCHEMA_VERSION, envelope, validate_envelope
from .server import App, serve
from .service import AnycastService, ServiceError

__all__ = [
    "ENDPOINTS",
    "EXIT_OK",
    "EXIT_IO",
    "EXIT_USAGE",
    "EXIT_PREEMPTED",
    "Lifecycle",
    "ServeConfig",
    "SERVE_SCHEMA",
    "SERVE_SCHEMA_VERSION",
    "envelope",
    "validate_envelope",
    "App",
    "serve",
    "AnycastService",
    "ServiceError",
]
