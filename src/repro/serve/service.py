"""The warm anycast-planning service behind every ``/v1`` endpoint.

:class:`AnycastService` loads one scenario at startup and keeps the
expensive state resident: every deployment (root letters for both DITL
years, every CDN ring), their lazily built :class:`FlowKernel`\\ s, the
region distance matrix, and the user-base columns the catchment and
inflation aggregates run over.  Query execution is a pure function of
that state, so the same :meth:`execute` answers requests whether it
runs on the event-loop's thread offload or inside a forked
:class:`~repro.engine.pool.MonitoredPool` worker — forked *after* the
warm-up, so workers share the resident tables copy-on-write, exactly
like the experiment engine's prewarm path.

Results are bitwise-identical to the library path: the service calls
the same ``resolve_many`` on the same warm kernels, and JSON's
shortest-repr float round-trip is exact.
"""

from __future__ import annotations

import os

import numpy as np

from .. import faults
from ..anycast import IndependentDeployment
from ..anycast.delta import apply_mutation, plan_add_regions, plan_withdraw, rebuild
from ..anycast.deployment import Deployment
from ..anycast.resilience import failure_impact
from ..core.cdf import WeightedCdf
from ..obs import MetricsRegistry, get_logger, metrics, set_trace_id, trace

__all__ = [
    "ServiceError",
    "AnycastService",
    "install_service",
    "service_task",
    "MAX_RESOLVE_ROWS",
    "MAX_WHATIF_SITES",
]

_log = get_logger("serve.service")

#: Hard cap on one ``/v1/resolve`` batch (requests beyond it are a 400,
#: not an OOM).
MAX_RESOLVE_ROWS = 100_000

#: Hard cap on sites added/removed by one what-if (re-propagation is the
#: expensive operation the worker semaphore exists for).
MAX_WHATIF_SITES = 16


class ServiceError(Exception):
    """A client-attributable failure, mapped to an HTTP status."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


def _bad_request(message: str) -> ServiceError:
    return ServiceError(400, message)


def _not_found(message: str) -> ServiceError:
    return ServiceError(404, message)


def _float_or_none(value: float) -> float | None:
    """JSON-safe float: masked (NaN) rows serialise as ``null``."""
    value = float(value)
    return None if value != value else value


class AnycastService:
    """One warm scenario plus every deployment table, ready to query."""

    def __init__(self, scenario, *, warm: bool = True):
        self.scenario = scenario
        self.deployments: dict[str, Deployment] = {}
        for letter, deployment in scenario.letters_2018.items():
            self.deployments[f"2018-{letter}"] = deployment
        for letter, deployment in scenario.letters_2020.items():
            self.deployments[f"2020-{letter}"] = deployment
        for ring_name, ring in scenario.cdn.rings.items():
            self.deployments[ring_name] = ring
        locations = list(scenario.user_base)
        self._pop_asns = np.array([loc.asn for loc in locations], dtype=np.int64)
        self._pop_regions = np.array(
            [loc.region_id for loc in locations], dtype=np.int64
        )
        self._pop_users = np.array([loc.users for loc in locations], dtype=np.float64)
        self._user_batches: dict[str, object] = {}
        if warm:
            self.warm()

    def warm(self) -> None:
        """Build every kernel and distance table before serving traffic.

        One single-row resolve per deployment forces the lazy kernel
        (and the shared region distance matrix) to materialise now, so
        the first real request pays nothing and forked pool workers
        inherit the tables copy-on-write.
        """
        probe_asn = int(self._pop_asns[0])
        probe_region = int(self._pop_regions[0])
        for name, deployment in self.deployments.items():
            deployment.resolve_many([probe_asn], [probe_region])
            _log.debug("warmed deployment %s", name)
        metrics.gauge("serve.deployments.resident").set(len(self.deployments))

    # -- lookup helpers ----------------------------------------------------
    def _deployment(self, name) -> Deployment:
        if not isinstance(name, str):
            raise _bad_request("deployment must be a string")
        deployment = self.deployments.get(name)
        if deployment is None:
            known = ", ".join(sorted(self.deployments))
            raise _not_found(f"unknown deployment {name!r}; known: {known}")
        return deployment

    def _user_batch(self, name: str):
        """The whole user base resolved against one deployment (memoised)."""
        batch = self._user_batches.get(name)
        if batch is None:
            deployment = self._deployment(name)
            batch = deployment.resolve_many(self._pop_asns, self._pop_regions)
            self._user_batches[name] = batch
        return batch

    # -- operations --------------------------------------------------------
    def scenario_payload(self) -> dict:
        scenario = self.scenario
        world = scenario.internet.world
        deployments = {}
        for name, deployment in sorted(self.deployments.items()):
            deployments[name] = {
                "kind": "letter" if isinstance(deployment, IndependentDeployment)
                        else "cdn-ring",
                "sites": len(deployment.sites),
                "global_sites": deployment.n_global_sites,
                "whatif": isinstance(deployment, IndependentDeployment),
            }
        return {
            "scale": scenario.params.scale,
            "seed": scenario.params.seed,
            "regions": len(world.regions),
            "ases": len(scenario.internet.topology.nodes),
            "total_users": scenario.user_base.total_users,
            "user_locations": len(scenario.user_base),
            "deployments": deployments,
        }

    def resolve_payload(self, deployment_name, pairs) -> dict:
        deployment = self._deployment(deployment_name)
        if not isinstance(pairs, list) or not pairs:
            raise _bad_request("pairs must be a non-empty list of [asn, region]")
        if len(pairs) > MAX_RESOLVE_ROWS:
            raise _bad_request(
                f"batch of {len(pairs)} rows exceeds the {MAX_RESOLVE_ROWS}-row cap"
            )
        asns, regions = [], []
        n_regions = len(self.scenario.internet.world.regions)
        for index, pair in enumerate(pairs):
            if (
                not isinstance(pair, (list, tuple))
                or len(pair) != 2
                or not all(isinstance(v, int) and not isinstance(v, bool) for v in pair)
            ):
                raise _bad_request(f"pairs[{index}] is not an [asn, region] integer pair")
            asn, region = pair
            if not 0 <= region < n_regions:
                raise _bad_request(
                    f"pairs[{index}]: region {region} outside [0, {n_regions})"
                )
            asns.append(asn)
            regions.append(region)
        batch = deployment.resolve_many(asns, regions)
        ok = batch.ok
        return {
            "deployment": deployment_name,
            "rows": len(batch),
            "served": int(ok.sum()),
            "ok": [bool(v) for v in ok],
            "site_ids": [int(v) for v in batch.site_ids],
            "site_region_ids": [int(v) for v in batch.site_region_ids],
            "as_hops": [int(v) for v in batch.as_hops],
            "base_rtt_ms": [_float_or_none(v) for v in batch.base_rtt_ms],
            "site_km": [_float_or_none(v) for v in batch.site_km],
            "min_km": [float(v) for v in batch.min_km],
        }

    def catchment_payload(self, deployment_name) -> dict:
        deployment = self._deployment(deployment_name)
        batch = self._user_batch(deployment_name)
        ok = batch.ok
        served_users = float(self._pop_users[ok].sum())
        site_users = np.zeros(len(deployment.sites))
        np.add.at(site_users, batch.site_ids[ok], self._pop_users[ok])
        sites = []
        for site in deployment.sites:
            users = float(site_users[site.site_id])
            sites.append(
                {
                    "site_id": site.site_id,
                    "name": site.name,
                    "region_id": site.region_id,
                    "is_global": site.is_global,
                    "users": int(users),
                    "share": users / served_users if served_users else 0.0,
                }
            )
        sites.sort(key=lambda s: s["users"], reverse=True)
        return {
            "deployment": deployment_name,
            "total_users": int(self._pop_users.sum()),
            "served_users": int(served_users),
            "max_site_share": max((s["share"] for s in sites), default=0.0),
            "sites": sites,
        }

    def inflation_payload(self, deployment_name) -> dict:
        deployment = self._deployment(deployment_name)
        batch = self._user_batch(deployment_name)
        ok = batch.ok
        weights = self._pop_users[ok]

        def summary(values: np.ndarray) -> dict:
            cdf = WeightedCdf(values, weights)
            return {
                "zero_fraction": cdf.fraction_at_zero(eps=1.0),
                "median": cdf.median,
                "p90": cdf.quantile(0.9),
                "p99": cdf.quantile(0.99),
                "over_100ms_fraction": cdf.fraction_above(100.0),
            }

        return {
            "deployment": deployment_name,
            "served_users": int(weights.sum()),
            "n_global_sites": deployment.n_global_sites,
            "geographic_inflation_ms": summary(batch.inflation_ms[ok]),
            "latency_inflation_ms": summary(batch.latency_inflation_ms[ok]),
        }

    def whatif_payload(self, deployment_name, remove_sites, add_regions,
                       degraded: bool = False) -> dict:
        deployment = self._deployment(deployment_name)
        if not isinstance(deployment, IndependentDeployment):
            raise _bad_request(
                f"what-if needs an independently attached deployment; "
                f"{deployment_name!r} is a CDN ring"
            )
        remove_sites = self._int_list(remove_sites, "remove_sites")
        add_regions = self._int_list(add_regions, "add_regions")
        if not remove_sites and not add_regions:
            raise _bad_request("what-if changes nothing: give remove_sites or add_regions")
        if len(remove_sites) + len(add_regions) > MAX_WHATIF_SITES:
            raise _bad_request(
                f"what-if touches {len(remove_sites) + len(add_regions)} sites; "
                f"cap is {MAX_WHATIF_SITES}"
            )
        n_regions = len(self.scenario.internet.world.regions)
        for region in add_regions:
            if not 0 <= region < n_regions:
                raise _bad_request(f"add_regions: region {region} outside [0, {n_regions})")
        modified = deployment
        # Each step plans the edit then applies it.  The normal path is
        # the delta kernel (scoped re-propagation + kernel patch);
        # ``degraded`` — set while the circuit breaker is open — takes
        # the full-rebuild oracle instead: slower, but the simplest code
        # path in the system, which is exactly what a browned-out daemon
        # should be running.
        apply = rebuild if degraded else apply_mutation
        if degraded:
            metrics.counter("serve.whatif.degraded_rebuilds.total").inc()
        try:
            if remove_sites:
                modified = apply(modified, plan_withdraw(modified, remove_sites))
            if add_regions:
                modified = apply(
                    modified,
                    plan_add_regions(self.scenario.internet, modified, add_regions),
                )
        except ValueError as error:
            raise _bad_request(str(error)) from None
        impact = failure_impact(deployment, modified, self.scenario.user_base)
        return {
            "deployment": deployment_name,
            "removed_sites": remove_sites,
            "added_regions": add_regions,
            "sites_before": len(deployment.sites),
            "sites_after": len(modified.sites),
            "users_measured": impact.users_measured,
            "users_rerouted": impact.users_rerouted,
            "rerouted_fraction": impact.rerouted_fraction,
            "median_rtt_before_ms": impact.median_rtt_before_ms,
            "median_rtt_after_ms": impact.median_rtt_after_ms,
            "p95_rtt_before_ms": impact.p95_rtt_before_ms,
            "p95_rtt_after_ms": impact.p95_rtt_after_ms,
            "max_site_share_before": impact.max_site_share_before,
            "max_site_share_after": impact.max_site_share_after,
        }

    @staticmethod
    def _int_list(values, name: str) -> list[int]:
        if values is None:
            return []
        if not isinstance(values, list) or not all(
            isinstance(v, int) and not isinstance(v, bool) for v in values
        ):
            raise _bad_request(f"{name} must be a list of integers")
        return values

    # -- dispatch ----------------------------------------------------------
    def execute(self, op: str, kwargs: dict) -> dict:
        """Run one named operation; raises :class:`ServiceError` on bad input."""
        if op == "scenario":
            return self.scenario_payload()
        if op == "resolve":
            return self.resolve_payload(kwargs.get("deployment"), kwargs.get("pairs"))
        if op == "catchment":
            return self.catchment_payload(kwargs.get("deployment"))
        if op == "inflation":
            return self.inflation_payload(kwargs.get("deployment"))
        if op == "whatif":
            return self.whatif_payload(
                kwargs.get("deployment"),
                kwargs.get("remove_sites"),
                kwargs.get("add_regions"),
                degraded=bool(kwargs.get("degraded", False)),
            )
        raise _bad_request(f"unknown operation {op!r}")

    def execute_safe(self, op: str, kwargs: dict) -> tuple:
        """:meth:`execute` with errors reified: the pool wire format.

        Returns ``("ok", payload)`` or ``("error", status, message)``.
        Only genuinely unexpected exceptions propagate (a worker-side
        bug — the caller maps those to a 500).
        """
        try:
            return ("ok", self.execute(op, kwargs))
        except ServiceError as error:
            return ("error", error.status, str(error))


#: The per-process service, inherited by forked pool workers.  Set in
#: the parent *before* the pool spawns (same pattern as the engine
#: runner's ``_WORKER_SCENARIO``).
_SERVICE: AnycastService | None = None


def install_service(service: AnycastService | None) -> None:
    global _SERVICE
    _SERVICE = service


def service_task(op: str, kwargs: dict, trace_ctx: tuple | None = None,
                 seq: int = 0, attempt: int = 0) -> tuple:
    """``MonitoredPool`` task: run one op against the inherited service.

    Returns ``(ok, (verdict, metrics_delta, task_dur_s))`` — the delta
    is this task's metrics snapshot diff, merged into the parent
    registry so ``/v1/metrics`` reports kernel/trace counters no matter
    where the query ran (the same contract the experiment engine uses);
    ``task_dur_s`` is the worker-side wall time of the ``serve.task``
    span, which the parent attributes to its compute frame so exclusive
    times telescope across the process hop.

    ``seq`` is a parent-assigned, monotonically increasing submission
    number.  It stands in for the batch engine's attempt counter in the
    fault layer (``faults.set_attempt``), so worker-kind fault plans
    stay deterministic in serving mode: a ``worker_crash:p=...`` draw
    differs per submission (a parent-side retry is a *new* submission,
    so it is not doomed to the same draw), and ``worker_crash:n=1``
    kills exactly the first submitted task rather than every task a
    freshly forked worker ever sees.  The ``worker_crash`` chokepoint
    fires here — only ever inside a forked pool worker, never on the
    thread/degraded path, where ``os._exit`` would kill the daemon.

    ``trace_ctx`` is ``(shard_dir, parent_span_id, trace_id)`` when the
    daemon is tracing: the worker shards into ``shard_dir`` (a no-op
    when the forked tracer already does — then it just re-roots, one
    contextvar set per request) and its spans carry the request's
    parent-side compute span as their parent.
    """
    if _SERVICE is None:  # pragma: no cover - wiring bug
        return False, None
    faults.set_attempt(seq)
    if faults.maybe_fire("worker_crash", f"serve.{op}") is not None:
        os._exit(faults.CRASH_EXIT_CODE)
    if trace_ctx is not None:
        shard_dir, parent_id, trace_id = trace_ctx
        if trace.shard_dir is None or str(trace.shard_dir) != str(shard_dir):
            trace.adopt(shard_dir, parent_id)
        else:
            trace.reroot(parent_id)
        set_trace_id(trace_id)
    before = metrics.snapshot()
    try:
        with trace.span("serve.task", op=op) as span:
            verdict = _SERVICE.execute_safe(op, kwargs)
    finally:
        if trace_ctx is not None:
            set_trace_id(None)
    delta = MetricsRegistry.diff(metrics.snapshot(), before)
    return True, (verdict, delta, span.dur_s)
