"""The asyncio HTTP/1.1 daemon behind ``repro serve``.

Hand-rolled on :func:`asyncio.start_server` — the service speaks just
enough HTTP for JSON clients and Prometheus scrapers (request line,
headers, ``Content-Length`` bodies, keep-alive), with zero dependencies
beyond the stdlib.

Concurrency model: parsing and light endpoints run on the event loop;
query endpoints offload through :meth:`App.execute` — either to a
forked :class:`~repro.engine.pool.MonitoredPool` worker (``--workers
N``, the default) or to a thread (``--workers 0``) — bounded by a
``--max-inflight`` semaphore so a burst backs up in the kernel's accept
queue instead of in Python memory.  Workers fork *after* the service
warm-up, so every worker shares the resident kernels copy-on-write.

Shutdown (see :mod:`repro.serve.lifecycle`): SIGTERM closes the
listener, in-flight requests get ``--grace`` seconds, keep-alive
stragglers get 503, and the exit code is 0 (clean drain) or 4
(grace expired) — the batch CLI's preemption semantics.
"""

from __future__ import annotations

import asyncio
import sys

from .. import faults
from ..engine import ArtifactCache, MonitoredPool
from ..obs import get_logger, metrics
from .handlers import Request, Response, error_response, handle
from .lifecycle import EXIT_IO, EXIT_PREEMPTED, EXIT_USAGE, Lifecycle, ServeConfig
from .service import AnycastService, ServiceError, install_service, service_task

__all__ = ["App", "serve", "MAX_BODY_BYTES"]

_log = get_logger("serve.server")

#: Largest accepted request body (a 100k-pair resolve batch is ~2 MB).
MAX_BODY_BYTES = 8 * 1024 * 1024


class App:
    """One daemon: service + offload pool + lifecycle, shared by handlers."""

    def __init__(self, service: AnycastService, config: ServeConfig,
                 pool: MonitoredPool | None = None):
        self.service = service
        self.config = config
        self.pool = pool
        self.lifecycle = Lifecycle(grace=config.grace)
        self._offload_semaphore = asyncio.Semaphore(max(1, config.max_inflight))
        self.whatif_semaphore = asyncio.Semaphore(max(1, config.whatif_concurrency))

    async def execute(self, op: str, kwargs: dict) -> dict:
        """Run one service operation off the event loop; returns its payload.

        Raises :class:`ServiceError` for client-attributable failures
        (the worker ships them back reified, so a bad request never
        burns a retry or a worker).
        """
        async with self._offload_semaphore:
            if self.pool is not None:
                ok, payload, detail = await asyncio.wrap_future(
                    self.pool.submit((op, kwargs))
                )
                if not ok:
                    raise RuntimeError(detail or "service task failed")
                verdict, delta = payload
                if delta is not None:
                    metrics.merge(delta)
            else:
                loop = asyncio.get_running_loop()
                verdict = await loop.run_in_executor(
                    None, self.service.execute_safe, op, kwargs
                )
        if verdict[0] == "error":
            raise ServiceError(verdict[1], verdict[2])
        return verdict[1]

    # -- connection handling ----------------------------------------------
    async def handle_client(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except ServiceError as error:
                    _write_response(
                        writer, error_response(error.status, "unrouted", str(error)),
                        close=True,
                    )
                    break
                if request is None:  # client closed cleanly
                    break
                # Snapshot the drain state at arrival: a request read off
                # the wire before the drain began is answered within the
                # grace window; one arriving after it gets 503.
                arrived_draining = self.lifecycle.draining
                slow = faults.maybe_fire(
                    "slow_request", f"{request.method} {request.path}"
                )
                # The in-flight window covers the response flush too, so
                # a drain cannot tear the loop down under a written-but-
                # unflushed answer.
                self.lifecycle.request_started()
                try:
                    if slow is not None:
                        await asyncio.sleep(slow.delay())
                    response = await handle(
                        self, request, reject_draining=arrived_draining
                    )
                    close = (
                        self.lifecycle.draining
                        or request.headers.get("connection", "").lower() == "close"
                    )
                    _write_response(writer, response, close=close)
                    await writer.drain()
                finally:
                    self.lifecycle.request_finished()
                if close:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass


async def _read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request; ``None`` on clean EOF before a request line."""
    line = await reader.readline()
    if not line:
        return None
    try:
        method, target, _version = line.decode("latin-1").split()
    except ValueError:
        raise ServiceError(400, "malformed request line") from None
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        key, sep, value = line.decode("latin-1").partition(":")
        if sep:
            headers[key.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        raise ServiceError(400, "bad Content-Length") from None
    if length > MAX_BODY_BYTES:
        raise ServiceError(413, f"body of {length} bytes exceeds {MAX_BODY_BYTES}")
    body = await reader.readexactly(length) if length else b""
    path = target.split("?", 1)[0]
    return Request(method=method.upper(), path=path, headers=headers, body=body)


def _write_response(writer: asyncio.StreamWriter, response: Response,
                    *, close: bool) -> None:
    head = (
        f"HTTP/1.1 {response.status} {response.reason}\r\n"
        f"Content-Type: {response.content_type}\r\n"
        f"Content-Length: {len(response.body)}\r\n"
        f"Connection: {'close' if close else 'keep-alive'}\r\n"
        "\r\n"
    )
    writer.write(head.encode("latin-1") + response.body)


async def _amain(app: App, *, ready=None) -> int:
    lifecycle = app.lifecycle
    lifecycle.install_signal_handlers(asyncio.get_running_loop())
    server = await asyncio.start_server(
        app.handle_client, host=app.config.host, port=app.config.port
    )
    host, port = server.sockets[0].getsockname()[:2]
    print(f"serving on http://{host}:{port}", flush=True)
    if ready is not None:
        ready(host, port)
    async with server:
        await lifecycle.wait_for_drain()
        # Stop accepting: close the listening sockets; established
        # connections (and their in-flight requests) live on below.
        server.close()
        await server.wait_closed()
    drained = await lifecycle.wait_idle()
    if drained:
        _log.warning("drained cleanly (%s)", lifecycle.reason)
        return 0
    _log.error(
        "grace of %.1fs expired with %d request(s) in flight (%s)",
        lifecycle.grace, lifecycle.inflight, lifecycle.reason,
    )
    return EXIT_PREEMPTED


def serve(config: ServeConfig, *, scenario=None) -> int:
    """Boot the daemon and block until it drains; returns the exit code.

    ``scenario`` injects a pre-built scenario (tests); by default the
    scenario is built (or loaded from the artifact cache) here, then
    warmed, then — only then — the worker pool forks, so workers share
    every resident table copy-on-write.
    """
    import multiprocessing

    from ..experiments import Scenario

    if scenario is None:
        try:
            cache = ArtifactCache(root=config.cache_dir, enabled=not config.no_cache)
            scenario = Scenario(scale=config.scale, seed=config.seed, cache=cache)
        except ValueError as error:
            print(f"bad serve configuration: {error}", file=sys.stderr)
            return EXIT_USAGE
    _log.info("loading scenario (scale=%s seed=%d)...", config.scale, config.seed)
    service = AnycastService(scenario)
    install_service(service)

    pool = None
    workers = config.workers
    if workers > 0 and "fork" not in multiprocessing.get_all_start_methods():
        _log.warning("no fork start method on this platform; using thread offload")
        workers = 0
    if workers > 0:
        pool = MonitoredPool(
            workers,
            task=service_task,
            mp_context=multiprocessing.get_context("fork"),
        )
        pool.start_serving()
    try:
        return asyncio.run(_amain(App(service, config, pool)))
    except OSError as error:
        print(
            f"cannot listen on {config.host}:{config.port}: {error}",
            file=sys.stderr,
        )
        return EXIT_IO
    finally:
        install_service(None)
        if pool is not None:
            pool.shutdown()
