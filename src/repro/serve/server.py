"""The asyncio HTTP/1.1 daemon behind ``repro serve``.

Hand-rolled on :func:`asyncio.start_server` — the service speaks just
enough HTTP for JSON clients and Prometheus scrapers (request line,
headers, ``Content-Length`` bodies, keep-alive), with zero dependencies
beyond the stdlib.

Concurrency model: parsing and light endpoints run on the event loop;
query endpoints offload through :meth:`App.execute` — either to a
forked :class:`~repro.engine.pool.MonitoredPool` worker (``--workers
N``, the default) or to a thread (``--workers 0``) — through the
:mod:`repro.serve.overload` admission queue: ``--max-inflight``
requests compute, ``--max-queue`` wait, and the rest are shed with 429
(so a burst costs a bounded amount of memory and every refused client
hears so immediately).  Each request carries a deadline (per-endpoint
default or ``X-Deadline-Ms``); expiry answers 504 and abandons the
pool task, killing + respawning its worker to reclaim the slot.  A
circuit breaker around the pool trips on consecutive worker failures
and routes queries to the warm in-process kernels until half-open
probes prove the pool healthy again.  Workers fork *after* the service
warm-up, so every worker shares the resident kernels copy-on-write.

Request telemetry: every request gets a ``trace_id`` (honouring an
inbound ``X-Request-Id``), echoed back as ``X-Request-Id`` and bound to
the context so structured log lines carry it.  Around the request the
daemon opens a ``serve.request`` span with ``serve.parse`` /
``serve.queue`` / ``serve.compute`` / ``serve.serialize`` children;
with ``--trace`` the whole daemon runs inside
:meth:`~repro.obs.trace.Tracer.capture`, so forked workers shard spans
re-rooted under the request's compute frame and the merged trace
telescopes across processes.  ``--access-log`` writes one JSON record
per request (see :mod:`repro.serve.telemetry`); a background sampler
keeps ``process.rss_bytes`` / ``process.open_fds`` / ``serve.inflight``
/ ``serve.pool.queue_depth`` gauges fresh for ``/v1/metrics`` and
``/v1/debug/vars``.

Shutdown (see :mod:`repro.serve.lifecycle`): SIGTERM closes the
listener, in-flight requests get ``--grace`` seconds, keep-alive
stragglers get 503, and the exit code is 0 (clean drain) or 4
(grace expired) — the batch CLI's preemption semantics.
"""

from __future__ import annotations

import asyncio
import contextvars
import sys
import time
import uuid

from .. import faults
from ..engine import ArtifactCache, MonitoredPool
from ..obs import current_trace_id, get_logger, metrics, sample_process_stats, set_trace_id, trace
from .handlers import Request, Response, error_response, handle
from .lifecycle import EXIT_IO, EXIT_PREEMPTED, EXIT_USAGE, Lifecycle, ServeConfig
from .overload import (
    AdmissionQueue,
    CircuitBreaker,
    Deadline,
    DeadlineExpired,
    WorkerLost,
    count_expired,
)
from .service import AnycastService, ServiceError, install_service, service_task
from .telemetry import (
    ACCESS_LOG_SCHEMA_VERSION,
    RequestTelemetry,
    add_phase,
    begin_request,
    end_request,
)

__all__ = ["App", "serve", "MAX_BODY_BYTES", "MAX_REQUEST_ID_CHARS"]

_log = get_logger("serve.server")

#: Largest accepted request body (a 100k-pair resolve batch is ~2 MB).
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Longest honoured inbound ``X-Request-Id`` (anything longer, or with
#: non-token characters, is ignored and the generated id is kept).
MAX_REQUEST_ID_CHARS = 128

#: Seconds between resource-gauge samples.
SAMPLE_PERIOD_S = 1.0


def _inbound_request_id(headers: dict) -> str | None:
    """A safe client-supplied request id, or None to keep the generated one."""
    value = headers.get("x-request-id", "").strip()
    if not value or len(value) > MAX_REQUEST_ID_CHARS:
        return None
    if not all(ch.isalnum() or ch in "-_." for ch in value):
        return None
    return value


class App:
    """One daemon: service + offload pool + lifecycle, shared by handlers."""

    def __init__(self, service: AnycastService, config: ServeConfig,
                 pool: MonitoredPool | None = None):
        self.service = service
        self.config = config
        self.pool = pool
        self.lifecycle = Lifecycle(grace=config.grace)
        self.telemetry = RequestTelemetry(config.access_log)
        self.admission = AdmissionQueue(
            config.max_inflight, config.max_queue, config.shed_policy
        )
        self.breaker = CircuitBreaker(
            config.breaker_threshold, config.breaker_cooldown
        )
        self.whatif_semaphore = asyncio.Semaphore(max(1, config.whatif_concurrency))
        self._task_seq = 0  #: per-daemon pool submission counter (fault keying)
        # Requests queued at drain-start must not sit out --grace
        # holding connections: shed them all with 503 + Retry-After.
        self.lifecycle.on_drain(self.admission.shed_queued)

    async def execute(self, op: str, kwargs: dict,
                      deadline: Deadline | None = None) -> dict:
        """Run one service operation off the event loop; returns its payload.

        Raises :class:`ServiceError` for client-attributable failures
        (the worker ships them back reified, so a bad request never
        burns a retry or a worker) — including the overload verdicts:
        shed (429/503), deadline expired (504), workers lost (503).

        Two phases are accounted here: ``serve.queue`` (the admission
        queue — its span says whether the request was admitted or shed,
        and why) and ``serve.compute`` (the pool or thread round-trip,
        bounded by ``deadline``).  With tracing on, a pool worker
        re-roots its spans under this context's compute frame, and the
        worker's wall time is attributed to that frame's child time —
        the same telescoping contract the batch runner keeps.
        """
        try:
            with trace.span("serve.queue") as queue_span:
                try:
                    await self.admission.acquire(op, deadline)
                except ServiceError as error:
                    queue_span.set(
                        outcome=f"shed:{getattr(error, 'reason', None) or 'deadline'}"
                    )
                    raise
                queue_span.set(outcome="admitted")
        finally:
            # dur_s is final only once the span closes, so attribute the
            # phase here — on the shed path too.
            add_phase("queue", queue_span.dur_s)
        try:
            return await self._compute(op, kwargs, deadline)
        finally:
            self.admission.release()

    async def _compute(self, op: str, kwargs: dict,
                       deadline: Deadline | None) -> dict:
        expire = faults.maybe_fire("deadline_expire", f"serve.{op}")
        if expire is not None and deadline is not None:
            deadline.expire_in(expire.delay())
        route = self.breaker.route() if self.pool is not None else "thread"
        degraded = route == "degraded"
        if deadline is not None and deadline.expired:
            # The budget drained in the admission queue (or an injected
            # expiry): answer 504 now rather than burn compute on an
            # answer nobody is waiting for.
            count_expired("compute")
            raise DeadlineExpired(deadline.budget_ms, where="compute")
        with trace.span("serve.compute", op=op) as compute_span:
            if self.pool is not None and not degraded:
                verdict, worker_dur_s = await self._pool_compute(
                    op, kwargs, deadline, route, compute_span
                )
                # The worker's top span is this frame's child in
                # another process; attribute its wall time here so
                # exclusive times keep telescoping across the hop.
                compute_span.child_s += worker_dur_s
            else:
                if degraded:
                    compute_span.set(degraded=True)
                    metrics.counter("serve.degraded.total").inc()
                    metrics.counter(f"serve.{op}.degraded.total").inc()
                verdict = await self._thread_compute(op, kwargs, deadline, degraded)
        add_phase("compute", compute_span.dur_s)
        if verdict[0] == "error":
            raise ServiceError(verdict[1], verdict[2])
        return verdict[1]

    async def _pool_compute(self, op: str, kwargs: dict,
                            deadline: Deadline | None, route: str,
                            compute_span) -> tuple:
        """One pool round-trip: deadline-bounded, one retry on worker death.

        Returns ``(verdict, worker_dur_s)``.  Every submission gets a
        fresh ``seq`` (the fault layer's attempt key), so a retry after
        a ``worker_crash`` firing is a new draw, not a doomed replay.
        The breaker hears about every round-trip: worker death and
        deadline expiry are failures; a delivered verdict — even a
        reified client error — is a success.
        """
        last_death = "worker died"
        for attempt in range(2):
            trace_ctx = None
            if trace.enabled and trace.shard_dir is not None:
                trace_ctx = (
                    str(trace.shard_dir),
                    compute_span.span_id,
                    current_trace_id(),
                )
            seq, self._task_seq = self._task_seq, self._task_seq + 1
            future = self.pool.submit((op, kwargs, trace_ctx, seq))
            timeout = deadline.remaining_s() if deadline is not None else None
            try:
                ok, payload, detail = await asyncio.wait_for(
                    asyncio.wrap_future(future), timeout
                )
            except (TimeoutError, asyncio.TimeoutError):
                # The slot must come back even though the task will not:
                # abandon kills + respawns the worker running it.
                self.pool.abandon(future)
                self.breaker.record_failure(route, "deadline expired")
                count_expired("compute")
                raise DeadlineExpired(deadline.budget_ms, where="compute") from None
            except RuntimeError as error:  # worker died (or was abandoned)
                last_death = str(error)
                metrics.counter("serve.worker_lost.total").inc()
                self.breaker.record_failure(route, last_death)
                retryable = (
                    attempt == 0
                    and route == "pool"
                    and not self.lifecycle.draining
                    and (deadline is None or not deadline.expired)
                )
                if not retryable:
                    break
                metrics.counter("serve.retries.total").inc()
                _log.warning("%s serving %s; retrying on a fresh worker",
                             last_death, op)
                continue
            if not ok:
                # Worker-side harness failure (not a reified client
                # error) — a bug, so surface a 500, but count it against
                # the breaker like any other pool failure.
                self.breaker.record_failure(route, detail or "task failed")
                raise RuntimeError(detail or "service task failed")
            verdict, delta, worker_dur_s = payload
            if delta is not None:
                metrics.merge(delta)
            self.breaker.record_success(route)
            return verdict, worker_dur_s
        raise WorkerLost(
            f"pool workers kept dying under this request ({last_death}); "
            "retry shortly"
        )

    async def _thread_compute(self, op: str, kwargs: dict,
                              deadline: Deadline | None,
                              degraded: bool) -> tuple:
        # run_in_executor does not propagate contextvars, so carry the
        # context over explicitly — kernel spans in the thread then
        # nest under this compute frame.
        loop = asyncio.get_running_loop()
        context = contextvars.copy_context()
        if degraded and op == "whatif":
            # Browned out: take the full-rebuild oracle, the simplest
            # code path, instead of the delta kernel.
            kwargs = dict(kwargs, degraded=True)
        future = loop.run_in_executor(
            None, lambda: context.run(self.service.execute_safe, op, kwargs)
        )
        timeout = deadline.remaining_s() if deadline is not None else None
        try:
            return await asyncio.wait_for(future, timeout)
        except (TimeoutError, asyncio.TimeoutError):
            # The thread cannot be killed; it finishes into the void
            # while the client gets its 504 on time.
            count_expired("compute")
            raise DeadlineExpired(deadline.budget_ms, where="compute") from None

    # -- connection handling ----------------------------------------------
    async def handle_client(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                # Read the request line *before* opening the request
                # span: keep-alive idle time between requests is not
                # request time.
                request_line = await reader.readline()
                if not request_line:
                    break  # client closed cleanly between requests
                if await self._serve_one(reader, writer, request_line):
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _serve_one(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter,
                         request_line: bytes) -> bool:
        """Serve one request end to end; True = close the connection."""
        trace_id = uuid.uuid4().hex
        record = {
            "schema": ACCESS_LOG_SCHEMA_VERSION,
            "ts": time.time(),
            "trace_id": trace_id,
            "method": "?",
            "path": "?",
            "endpoint": "unrouted",
            "status": 0,
            "dur_ms": 0.0,
            "bytes_in": 0,
            "bytes_out": 0,
            "phases": {},
        }
        record_token = begin_request(record)
        set_trace_id(trace_id)
        started = time.perf_counter()
        close = False
        try:
            with trace.span("serve.request", trace_id=trace_id) as request_span:
                request: Request | None = None
                parse_error: ServiceError | None = None
                with trace.span("serve.parse") as parse_span:
                    try:
                        request = await _read_request(reader, request_line)
                    except ServiceError as error:
                        parse_error = error
                add_phase("parse", parse_span.dur_s)
                if request is not None:
                    record["method"] = request.method
                    record["path"] = request.path
                    record["bytes_in"] = len(request.body)
                    inbound = _inbound_request_id(request.headers)
                    if inbound is not None:
                        trace_id = inbound
                        record["trace_id"] = trace_id
                        set_trace_id(trace_id)
                    request_span.set(
                        trace_id=trace_id, method=request.method, path=request.path
                    )
                if parse_error is not None:
                    response = error_response(
                        parse_error.status, "unrouted", str(parse_error)
                    )
                    close = True
                    response.headers["X-Request-Id"] = trace_id
                    _write_response(writer, response, close=True)
                    await writer.drain()
                else:
                    # Snapshot the drain state at arrival: a request read
                    # off the wire before the drain began is answered
                    # within the grace window; one arriving after it gets
                    # 503.
                    arrived_draining = self.lifecycle.draining
                    slow = faults.maybe_fire(
                        "slow_request", f"{request.method} {request.path}"
                    )
                    # The in-flight window covers the response flush too,
                    # so a drain cannot tear the loop down under a
                    # written-but-unflushed answer.
                    self.lifecycle.request_started()
                    try:
                        if slow is not None:
                            await asyncio.sleep(slow.delay())
                        response = await handle(
                            self, request, reject_draining=arrived_draining
                        )
                        close = (
                            self.lifecycle.draining
                            or request.headers.get("connection", "").lower() == "close"
                        )
                        response.headers["X-Request-Id"] = trace_id
                        _write_response(writer, response, close=close)
                        await writer.drain()
                    finally:
                        self.lifecycle.request_finished()
                record["endpoint"] = response.endpoint
                record["status"] = response.status
                record["bytes_out"] = len(response.body)
                request_span.set(endpoint=response.endpoint, status=response.status)
        finally:
            record["dur_ms"] = (time.perf_counter() - started) * 1000.0
            end_request(record_token)
            set_trace_id(None)  # keep-alive idle time carries no request id
            self.telemetry.record(record)
        return close


async def _read_request(reader: asyncio.StreamReader,
                        request_line: bytes) -> Request:
    """Parse one request whose request line was already read."""
    try:
        method, target, _version = request_line.decode("latin-1").split()
    except ValueError:
        raise ServiceError(400, "malformed request line") from None
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        key, sep, value = line.decode("latin-1").partition(":")
        if sep:
            headers[key.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        raise ServiceError(400, "bad Content-Length") from None
    if length > MAX_BODY_BYTES:
        raise ServiceError(413, f"body of {length} bytes exceeds {MAX_BODY_BYTES}")
    body = await reader.readexactly(length) if length else b""
    path = target.split("?", 1)[0]
    return Request(method=method.upper(), path=path, headers=headers, body=body)


def _write_response(writer: asyncio.StreamWriter, response: Response,
                    *, close: bool) -> None:
    extra = "".join(
        f"{name}: {value}\r\n" for name, value in response.headers.items()
    )
    head = (
        f"HTTP/1.1 {response.status} {response.reason}\r\n"
        f"Content-Type: {response.content_type}\r\n"
        f"Content-Length: {len(response.body)}\r\n"
        f"{extra}"
        f"Connection: {'close' if close else 'keep-alive'}\r\n"
        "\r\n"
    )
    writer.write(head.encode("latin-1") + response.body)


async def _sample_resources(app: App, period: float = SAMPLE_PERIOD_S) -> None:
    """Keep the process/daemon resource gauges fresh (background task)."""
    while True:
        stats = sample_process_stats()
        if stats["rss_bytes"] is not None:
            metrics.gauge("process.rss_bytes").set(stats["rss_bytes"])
        if stats["open_fds"] is not None:
            metrics.gauge("process.open_fds").set(stats["open_fds"])
        metrics.gauge("serve.inflight").set(app.lifecycle.inflight)
        metrics.gauge("serve.pool.queue_depth").set(
            app.pool.queue_depth if app.pool is not None else 0
        )
        metrics.gauge("serve.admission.inflight").set(app.admission.inflight)
        metrics.gauge("serve.admission.queued").set(app.admission.queued)
        await asyncio.sleep(period)


async def _amain(app: App, *, ready=None) -> int:
    lifecycle = app.lifecycle
    lifecycle.install_signal_handlers(asyncio.get_running_loop())
    server = await asyncio.start_server(
        app.handle_client, host=app.config.host, port=app.config.port
    )
    host, port = server.sockets[0].getsockname()[:2]
    print(f"serving on http://{host}:{port}", flush=True)
    if ready is not None:
        ready(host, port)
    sampler = asyncio.create_task(_sample_resources(app))
    try:
        async with server:
            await lifecycle.wait_for_drain()
            # Stop accepting: close the listening sockets; established
            # connections (and their in-flight requests) live on below.
            server.close()
            await server.wait_closed()
        drained = await lifecycle.wait_idle()
    finally:
        sampler.cancel()
    if drained:
        _log.warning("drained cleanly (%s)", lifecycle.reason)
        return 0
    _log.error(
        "grace of %.1fs expired with %d request(s) in flight (%s)",
        lifecycle.grace, lifecycle.inflight, lifecycle.reason,
    )
    return EXIT_PREEMPTED


def serve(config: ServeConfig, *, scenario=None) -> int:
    """Boot the daemon and block until it drains; returns the exit code.

    ``scenario`` injects a pre-built scenario (tests); by default the
    scenario is built (or loaded from the artifact cache) here, then
    warmed, then — only then — the worker pool forks, so workers share
    every resident table copy-on-write.

    With ``config.trace`` set, the whole daemon lifetime runs inside
    :meth:`~repro.obs.trace.Tracer.capture`: the pool forks *after* the
    tracer starts (workers inherit the enabled tracer and shard dir),
    shuts down *before* the capture ends, and the merged trace lands at
    the configured path on exit.
    """
    import multiprocessing

    from ..experiments import Scenario

    if scenario is None:
        try:
            cache = ArtifactCache(root=config.cache_dir, enabled=not config.no_cache)
            scenario = Scenario(scale=config.scale, seed=config.seed, cache=cache)
        except ValueError as error:
            print(f"bad serve configuration: {error}", file=sys.stderr)
            return EXIT_USAGE
    _log.info("loading scenario (scale=%s seed=%d)...", config.scale, config.seed)
    service = AnycastService(scenario)
    install_service(service)

    def _boot() -> int:
        pool = None
        workers = config.workers
        if workers > 0 and "fork" not in multiprocessing.get_all_start_methods():
            _log.warning("no fork start method on this platform; using thread offload")
            workers = 0
        if workers > 0:
            pool = MonitoredPool(
                workers,
                task=service_task,
                mp_context=multiprocessing.get_context("fork"),
            )
            pool.start_serving()
        try:
            app = App(service, config, pool)
            try:
                app.telemetry.open()
            except OSError as error:
                print(
                    f"cannot write access log {config.access_log}: {error}",
                    file=sys.stderr,
                )
                return EXIT_IO
            try:
                return asyncio.run(_amain(app))
            except OSError as error:
                print(
                    f"cannot listen on {config.host}:{config.port}: {error}",
                    file=sys.stderr,
                )
                return EXIT_IO
            finally:
                app.telemetry.close()
        finally:
            # Inside any trace capture: worker shards must be final
            # before the capture merges them.
            if pool is not None:
                pool.shutdown()

    try:
        if config.trace:
            try:
                capture = trace.capture(
                    config.trace, name="serve.daemon",
                    scale=config.scale, seed=config.seed,
                )
                with capture:
                    return _boot()
            except OSError as error:
                print(f"cannot write trace {config.trace}: {error}", file=sys.stderr)
                return EXIT_IO
        return _boot()
    finally:
        install_service(None)
